#include "workload/timeline.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>
#include <utility>

namespace medea::workload {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Per-window value of series s at window w (delta for counters, sample
/// for gauges; zero before the series appeared).
std::uint64_t value_at(const telemetry::Series& s, std::size_t w) {
  if (w < s.first_window || w - s.first_window >= s.values.size()) return 0;
  return s.values[w - s.first_window];
}

/// A `<fabric>.router.<id>.<metric>` series name, decomposed.
struct RouterSeries {
  std::string group;  ///< "<fabric>.router.<metric>"
  int id = -1;
  const telemetry::Series* series = nullptr;
};

bool parse_router_series(const telemetry::Series& s, RouterSeries& out) {
  const std::string tag = ".router.";
  const auto at = s.name.find(tag);
  if (at == std::string::npos) return false;
  std::size_t i = at + tag.size();
  if (i >= s.name.size() ||
      !std::isdigit(static_cast<unsigned char>(s.name[i]))) {
    return false;
  }
  int id = 0;
  while (i < s.name.size() &&
         std::isdigit(static_cast<unsigned char>(s.name[i]))) {
    id = id * 10 + (s.name[i] - '0');
    ++i;
  }
  if (i >= s.name.size() || s.name[i] != '.') return false;
  out.group = s.name.substr(0, at) + ".router." + s.name.substr(i + 1);
  out.id = id;
  out.series = &s;
  return true;
}

/// Split the timeline's series into per-router groups (heatmap sources)
/// and everything else, preserving name order.
void split_series(const telemetry::Timeline& tl,
                  std::vector<const telemetry::Series*>& plain,
                  std::map<std::string, std::vector<RouterSeries>>& groups) {
  for (const telemetry::Series& s : tl.series) {
    RouterSeries rs;
    if (parse_router_series(s, rs)) {
      // The map slot is selected before the argument moves from rs
      // (object expression sequenced first), so keying on rs.group here
      // is safe.
      groups[rs.group].push_back(std::move(rs));
    } else {
      plain.push_back(&s);
    }
  }
}

}  // namespace

std::string format_timeline_json(const telemetry::Timeline& tl,
                                 const TimelineMeta& meta) {
  std::vector<const telemetry::Series*> plain;
  std::map<std::string, std::vector<RouterSeries>> groups;
  split_series(tl, plain, groups);

  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"medea-timeline-v1\",\n";
  os << "  \"workload\": \"" << json_escape(meta.workload) << "\",\n";
  os << "  \"seed\": " << meta.seed << ",\n";
  os << "  \"noc\": {\"width\": " << meta.noc_width
     << ", \"height\": " << meta.noc_height << "},\n";
  os << "  \"phases\": {\"warmup_end\": " << meta.measurement.warmup_end
     << ", \"measure_end\": " << meta.measurement.measure_end
     << ", \"run_cycles\": " << meta.measurement.run_cycles << "},\n";
  os << "  \"sample_every\": " << tl.sample_every << ",\n";
  os << "  \"num_windows\": " << tl.num_windows() << ",\n";
  os << "  \"sample_cycles\": [";
  for (std::size_t i = 0; i < tl.sample_cycles.size(); ++i) {
    os << (i ? ", " : "") << tl.sample_cycles[i];
  }
  os << "],\n";

  os << "  \"series\": [";
  bool first = true;
  for (const telemetry::Series* s : plain) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"name\": \"" << json_escape(s->name) << "\", \"kind\": \""
       << (s->cumulative ? "counter" : "gauge")
       << "\", \"first_window\": " << s->first_window << ", \"values\": [";
    for (std::size_t i = 0; i < s->values.size(); ++i) {
      os << (i ? ", " : "") << s->values[i];
    }
    os << "]}";
  }
  os << "\n  ],\n";

  // Per-router groups render as spatial frames: one flattened
  // row-major width x height grid of per-window deltas per window.
  os << "  \"heatmaps\": [";
  first = true;
  for (const auto& [group, members] : groups) {
    int max_id = 0;
    for (const RouterSeries& rs : members) max_id = std::max(max_id, rs.id);
    int w = meta.noc_width, h = meta.noc_height;
    if (w <= 0 || h <= 0 || w * h <= max_id) {
      w = max_id + 1;
      h = 1;
    }
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"name\": \"" << json_escape(group) << "\", \"width\": " << w
       << ", \"height\": " << h << ", \"frames\": [";
    for (std::size_t win = 0; win < tl.num_windows(); ++win) {
      std::vector<std::uint64_t> cells(static_cast<std::size_t>(w) *
                                           static_cast<std::size_t>(h),
                                       0);
      for (const RouterSeries& rs : members) {
        cells[static_cast<std::size_t>(rs.id)] = value_at(*rs.series, win);
      }
      os << (win ? ", " : "") << "[";
      for (std::size_t i = 0; i < cells.size(); ++i) {
        os << (i ? "," : "") << cells[i];
      }
      os << "]";
    }
    os << "]}";
  }
  os << "\n  ]\n";
  os << "}\n";
  return std::move(os).str();
}

std::string format_timeline_csv(const telemetry::Timeline& tl) {
  std::ostringstream os;
  os << "window,cycle_end,window_cycles";
  for (const telemetry::Series& s : tl.series) os << "," << s.name;
  os << "\n";
  for (std::size_t w = 0; w < tl.num_windows(); ++w) {
    os << w << "," << tl.sample_cycles[w] << "," << tl.window_cycles(w);
    for (const telemetry::Series& s : tl.series) os << "," << value_at(s, w);
    os << "\n";
  }
  return std::move(os).str();
}

namespace {

std::string format_chrome_trace_impl(
    const telemetry::Timeline& tl, const TimelineMeta& meta,
    const std::vector<telemetry::HostSpan>& spans,
    const telemetry::FlitTrace* flits, int flow_packets) {
  std::ostringstream os;
  os << "{\"traceEvents\": [\n";
  bool first = true;
  const auto emit = [&](const std::string& ev) {
    os << (first ? "" : ",\n") << ev;
    first = false;
  };
  const auto meta_ev = [&](int pid, int tid, const std::string& what,
                           const std::string& name) {
    std::ostringstream e;
    e << "{\"ph\": \"M\", \"pid\": " << pid << ", \"tid\": " << tid
      << ", \"name\": \"" << what << "\", \"args\": {\"name\": \""
      << json_escape(name) << "\"}}";
    emit(std::move(e).str());
  };
  const auto span_ev = [&](int pid, int tid, const std::string& name,
                           const std::string& cat, std::uint64_t ts,
                           std::uint64_t dur) {
    std::ostringstream e;
    e << "{\"ph\": \"X\", \"pid\": " << pid << ", \"tid\": " << tid
      << ", \"name\": \"" << json_escape(name) << "\", \"cat\": \""
      << json_escape(cat) << "\", \"ts\": " << ts << ", \"dur\": " << dur
      << "}";
    emit(std::move(e).str());
  };
  const auto counter_ev = [&](int pid, const std::string& name,
                              std::uint64_t ts, const std::string& value) {
    std::ostringstream e;
    e << "{\"ph\": \"C\", \"pid\": " << pid << ", \"tid\": 0, \"name\": \""
      << json_escape(name) << "\", \"cat\": \"telemetry\", \"ts\": " << ts
      << ", \"args\": {\"value\": " << value << "}}";
    emit(std::move(e).str());
  };

  // --- pid 1: the simulated-time domain, cycles rendered as µs ---
  meta_ev(1, 0, "process_name",
          "sim: " + (meta.workload.empty() ? "run" : meta.workload) +
              " (1 cycle = 1us)");
  meta_ev(1, 0, "thread_name", "phases");

  const sim::Cycle end_cycle =
      std::max(meta.measurement.run_cycles,
               tl.empty() ? sim::Cycle{0} : tl.sample_cycles.back());
  const MeasurementResult& mr = meta.measurement;
  if (mr.measure_end > mr.warmup_end && mr.measure_end <= end_cycle) {
    // Phased run: the three booksim-style phases as top-level spans.
    if (mr.warmup_end > 0) span_ev(1, 0, "warmup", "phase", 0, mr.warmup_end);
    span_ev(1, 0, "measure", "phase", mr.warmup_end,
            mr.measure_end - mr.warmup_end);
    if (end_cycle > mr.measure_end) {
      span_ev(1, 0, "drain", "phase", mr.measure_end,
              end_cycle - mr.measure_end);
    }
  } else if (end_cycle > 0) {
    span_ev(1, 0, "run", "phase", 0, end_cycle);
  }

  // Counter tracks: windowed rates for counters (value plotted at the
  // window's *start*, chrome draws a step to the next sample), raw
  // values for gauges.  Per-router tracks only on small fabrics — a
  // 64-track wall is readable, a 1024-track one is not.
  std::vector<const telemetry::Series*> plain;
  std::map<std::string, std::vector<RouterSeries>> groups;
  split_series(tl, plain, groups);
  for (const telemetry::Series* s : plain) {
    for (std::size_t w = 0; w < tl.num_windows(); ++w) {
      const std::uint64_t ts = w == 0 ? 0 : tl.sample_cycles[w - 1];
      if (s->cumulative) {
        const double rate = static_cast<double>(value_at(*s, w)) /
                            static_cast<double>(tl.window_cycles(w));
        counter_ev(1, s->name + " (per cycle)", ts, fmt_double(rate));
      } else {
        counter_ev(1, s->name, ts, std::to_string(value_at(*s, w)));
      }
    }
  }
  for (const auto& [group, members] : groups) {
    if (members.size() > 64) continue;
    for (const RouterSeries& rs : members) {
      for (std::size_t w = 0; w < tl.num_windows(); ++w) {
        const std::uint64_t ts = w == 0 ? 0 : tl.sample_cycles[w - 1];
        const double rate = static_cast<double>(value_at(*rs.series, w)) /
                            static_cast<double>(tl.window_cycles(w));
        counter_ev(1, rs.series->name + " (per cycle)", ts, fmt_double(rate));
      }
    }
  }

  // --- pid 1, flit flows: the worst packets' journeys across per-router
  // thread tracks, connected by Perfetto flow arrows.  A slice is the
  // flit's residency in one router ([arrival, departure] in cycles); the
  // "s"/"t"/"f" events bind to those slices by (pid, tid, ts) and carry
  // the flit uid as the flow id, which is what draws the arrows. ---
  if (flits != nullptr && flits->enabled() && !flits->flits.empty()) {
    const auto flow_ev = [&](const char* ph, std::uint32_t id, int tid,
                             std::uint64_t ts, bool end_binding) {
      std::ostringstream e;
      e << "{\"ph\": \"" << ph << "\", \"pid\": 1, \"tid\": " << tid
        << ", \"name\": \"flit journey\", \"cat\": \"flit\", \"id\": " << id
        << ", \"ts\": " << ts;
      if (end_binding) e << ", \"bp\": \"e\"";
      e << "}";
      emit(std::move(e).str());
    };
    const auto router_tid = [](std::uint16_t node) {
      return 100 + static_cast<int>(node);
    };
    const auto worst = flits->worst(flow_packets);

    // Name the visited router tracks (once each).
    std::vector<std::uint16_t> named;
    const auto name_router = [&](std::uint16_t node) {
      if (std::find(named.begin(), named.end(), node) != named.end()) return;
      named.push_back(node);
      std::string label = "router " + std::to_string(node);
      if (flits->width > 0) {
        label += " (" + std::to_string(node % flits->width) + "," +
                 std::to_string(node / flits->width) + ")";
      }
      meta_ev(1, router_tid(node), "thread_name", label);
    };
    for (const telemetry::TracedFlit* f : worst) {
      if (f->hop_count == 0) continue;
      for (std::uint32_t i = 0; i < f->hop_count; ++i) {
        name_router(flits->hop_node[f->first_hop + i]);
      }
      name_router(f->dst);
    }

    for (const telemetry::TracedFlit* f : worst) {
      if (f->hop_count == 0) continue;
      const std::string label = "flit " + std::to_string(f->uid);
      sim::Cycle arrive = f->inject_cycle;
      for (std::uint32_t i = 0; i < f->hop_count; ++i) {
        const telemetry::TracedHop h = flits->hop(f->first_hop + i);
        const std::uint64_t dur = h.cycle + 1 - arrive;
        span_ev(1, router_tid(h.node),
                h.deflected != 0 ? label + " (deflected)" : label, "flit",
                arrive, dur);
        flow_ev(i == 0 ? "s" : "t", f->uid, router_tid(h.node), arrive, false);
        arrive = h.cycle + 1;
      }
      // Final residency at the destination until delivery.
      span_ev(1, router_tid(f->dst), label, "flit", arrive,
              f->deliver_cycle + 1 - arrive);
      flow_ev("f", f->uid, router_tid(f->dst), arrive, true);
    }
  }

  // --- pid 2: host wall-clock spans from ProfileScope ---
  if (!spans.empty()) {
    meta_ev(2, 0, "process_name", "host (wall clock)");
    std::vector<std::uint32_t> tids;
    for (const telemetry::HostSpan& s : spans) tids.push_back(s.tid);
    std::sort(tids.begin(), tids.end());
    tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
    for (std::uint32_t tid : tids) {
      meta_ev(2, static_cast<int>(tid), "thread_name",
              "host-" + std::to_string(tid));
    }
    for (const telemetry::HostSpan& s : spans) {
      span_ev(2, static_cast<int>(s.tid), s.name, s.category, s.start_us,
              s.dur_us);
    }
  }

  os << "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"schema\": "
        "\"medea-chrome-trace-v1\", \"workload\": \""
     << json_escape(meta.workload) << "\", \"seed\": " << meta.seed << "}}\n";
  return std::move(os).str();
}

}  // namespace

std::string format_chrome_trace(const telemetry::Timeline& tl,
                                const TimelineMeta& meta,
                                const std::vector<telemetry::HostSpan>& spans) {
  return format_chrome_trace_impl(tl, meta, spans, nullptr, 0);
}

std::string format_chrome_trace(const telemetry::Timeline& tl,
                                const TimelineMeta& meta,
                                const std::vector<telemetry::HostSpan>& spans,
                                const telemetry::FlitTrace& flits,
                                int flow_packets) {
  return format_chrome_trace_impl(tl, meta, spans, &flits, flow_packets);
}

std::map<std::string, double> timeline_summary(const telemetry::Timeline& tl) {
  std::map<std::string, double> out;
  if (tl.empty()) return out;  // unsampled run: no metrics at all
  out["timeline_windows"] = static_cast<double>(tl.num_windows());

  const auto windowed_rates = [&](const telemetry::Series& s) {
    std::vector<double> r(tl.num_windows());
    for (std::size_t w = 0; w < tl.num_windows(); ++w) {
      r[w] = static_cast<double>(value_at(s, w)) /
             static_cast<double>(tl.window_cycles(w));
    }
    return r;
  };

  const telemetry::Series* delivered = tl.find("noc.flits_delivered");
  if (delivered == nullptr) delivered = tl.find("xynoc.flits_delivered");
  if (delivered != nullptr) {
    const auto rates = windowed_rates(*delivered);
    double peak = 0.0, sum = 0.0;
    for (double r : rates) {
      peak = std::max(peak, r);
      sum += r;
    }
    out["timeline_peak_flits_per_cycle"] = peak;
    out["timeline_mean_flits_per_cycle"] =
        sum / static_cast<double>(rates.size());
  }

  // Peak windowed deflection rate: deflections per routed flit within
  // one window — the time-resolved congestion signal the end-of-run
  // scalar hides (transients around the saturation knee).
  const telemetry::Series* defl = tl.find("noc.deflections_total");
  const telemetry::Series* inj = tl.find("noc.flits_injected");
  if (defl != nullptr && inj != nullptr) {
    double peak = 0.0;
    for (std::size_t w = 0; w < tl.num_windows(); ++w) {
      const double i = static_cast<double>(value_at(*inj, w));
      if (i > 0.0) {
        peak = std::max(peak, static_cast<double>(value_at(*defl, w)) / i);
      }
    }
    out["timeline_peak_deflection_rate"] = peak;
  }

  if (const telemetry::Series* q = tl.find("sched.queued")) {
    std::uint64_t peak = 0;
    for (std::size_t w = 0; w < tl.num_windows(); ++w) {
      peak = std::max(peak, value_at(*q, w));
    }
    out["timeline_peak_queued"] = static_cast<double>(peak);
  }

  const telemetry::Series* cp = tl.find("sched.commit_pushes");
  const telemetry::Series* cd = tl.find("sched.commits_deduped");
  if (cp != nullptr && cd != nullptr) {
    double pushes = 0.0, dedups = 0.0;
    for (std::size_t w = 0; w < tl.num_windows(); ++w) {
      pushes += static_cast<double>(value_at(*cp, w));
      dedups += static_cast<double>(value_at(*cd, w));
    }
    if (pushes + dedups > 0.0) {
      out["timeline_commit_dedup_rate"] = dedups / (pushes + dedups);
    }
  }
  return out;
}

}  // namespace medea::workload
