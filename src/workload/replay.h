#pragma once

#include <memory>
#include <vector>

#include "noc/network.h"
#include "sim/scheduler.h"
#include "workload/trace.h"

/// \file replay.h
/// Trace replay: re-inject a recorded flit trace into a bare NoC.
///
/// The replayer is the fast-forward mode of the workload engine: it
/// drives the cycle-accurate network with the exact injection schedule a
/// full-system run produced, without instantiating PEs, caches, the MPMMU
/// or any coroutine program.  Because the deflection router is a pure
/// deterministic function of its inputs (and recorded uids preserve the
/// oldest-first tie-breaks), a replay reproduces the recorded network
/// behaviour bit-identically, at a fraction of the full simulation cost —
/// which is what makes replay-driven NoC/DSE studies cheap.
///
/// Mechanics: each recorded event (cycle T, src) is pushed into node
/// src's inject FIFO at cycle T-1 so it becomes visible — and, because
/// the network state matches the recording, is injected — at exactly
/// cycle T.  One sink component per node drains the eject queue.

namespace medea::workload {

struct ReplayResult {
  sim::Cycle cycles = 0;          ///< cycle at which the replay went idle
  std::uint64_t flits_injected = 0;
  std::uint64_t flits_delivered = 0;
  sim::Cycle last_delivery_cycle = 0;
};

class TraceReplayer final : public sim::Component {
 public:
  /// Copies the trace's events; the Trace itself need not outlive the
  /// replayer.  The network geometry must match trace.meta.
  TraceReplayer(sim::Scheduler& sched, noc::Network& net, const Trace& trace);

  void tick(sim::Cycle now) override;

  std::uint64_t injected() const { return injected_; }
  std::uint64_t delivered() const;
  sim::Cycle last_delivery_cycle() const { return last_delivery_; }

 private:
  /// Drains one node's eject queue (stand-in for the PE/MPMMU consumer).
  class Sink final : public sim::Component {
   public:
    Sink(sim::Scheduler& sched, noc::Network& net, int node,
         TraceReplayer& owner);
    void tick(sim::Cycle now) override;
    std::uint64_t count() const { return count_; }

   private:
    sim::Fifo<noc::Flit>& q_;
    TraceReplayer& owner_;
    std::uint64_t count_ = 0;
  };

  noc::Network& net_;
  int coord_bits_;
  std::vector<TraceEvent> events_;
  std::size_t next_ = 0;
  sim::Cycle shift_ = 0;  ///< uniform offset keeping the first push at >= 1
  std::uint64_t injected_ = 0;
  sim::Cycle last_delivery_ = 0;
  std::vector<std::unique_ptr<Sink>> sinks_;
};

/// Convenience: replay `trace` on `net`, running `sched` to completion.
/// Throws if the geometry mismatches or the cycle limit is hit.
ReplayResult run_replay(sim::Scheduler& sched, noc::Network& net,
                        const Trace& trace, sim::Cycle limit = 50'000'000);

}  // namespace medea::workload
