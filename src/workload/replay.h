#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "noc/network.h"
#include "noc/xy_network.h"
#include "sim/domain.h"
#include "sim/scheduler.h"
#include "workload/trace.h"

/// \file replay.h
/// Trace replay: re-inject a recorded flit trace into a bare NoC.
///
/// The replayer is the fast-forward mode of the workload engine: it
/// drives the cycle-accurate network with the exact injection schedule a
/// full-system run produced, without instantiating PEs, caches, the MPMMU
/// or any coroutine program.  Because both router models are pure
/// deterministic functions of their inputs (and recorded uids preserve
/// the deflection router's oldest-first tie-breaks), a replay reproduces
/// the recorded network behaviour bit-identically, at a fraction of the
/// full simulation cost — which is what makes replay-driven NoC/DSE
/// studies cheap.  The replayer is a template over the fabric type so
/// the deflection NoC (noc::Network) and the buffered-XY baseline
/// (noc::XyNetwork) both replay through the same machinery.
///
/// v2 traces carry the recording fabric's configuration; constructing a
/// replayer over a network whose kind or RouterConfig differs throws
/// unless `allow_config_mismatch` is set — replaying onto a different
/// NoC configuration is a legitimate what-if study, but it must be
/// explicit, never an accident (the delivered timing will differ from
/// the recording).  v1 traces recorded no config and skip the check.
///
/// Mechanics: each recorded event (cycle T, src) is pushed into node
/// src's inject FIFO at cycle T-1 so it becomes visible — and, because
/// the network state matches the recording, is injected — at exactly
/// cycle T.  Injection and sinking are per-node components constructed
/// on the node's own scheduler (net.sched_of(node)), so a replay shards
/// exactly like synthetic traffic: each shard injects and drains its own
/// band of the trace, with an identical component set — and therefore
/// identical wake/dedup counters — however many shards run it.

namespace medea::workload {

struct ReplayResult {
  sim::Cycle cycles = 0;          ///< cycle at which the replay went idle
  std::uint64_t flits_injected = 0;
  std::uint64_t flits_delivered = 0;
  sim::Cycle last_delivery_cycle = 0;
};

namespace detail {
/// Throw unless the recording fabric in `meta` matches the replay
/// network (kind + configuration).  No-op for v1 metas and when
/// `allow_mismatch` is set.
void check_replay_net(const TraceMeta& meta, const noc::Network& net,
                      bool allow_mismatch);
void check_replay_net(const TraceMeta& meta, const noc::XyNetwork& net,
                      bool allow_mismatch);
void throw_geometry_mismatch(const TraceMeta& meta);
}  // namespace detail

/// Replay driver over fabric N (noc::Network or noc::XyNetwork:
/// anything with geometry()/inject()/eject()/sched_of()/
/// reserve_flit_uids()).
template <typename N>
class BasicTraceReplayer {
 public:
  /// Copies the trace's events; the Trace itself need not outlive the
  /// replayer.  The network geometry must match trace.meta (always), and
  /// its configuration must match the recorded fabric for v2 traces
  /// (unless allow_config_mismatch).
  explicit BasicTraceReplayer(N& net, const Trace& trace,
                              bool allow_config_mismatch = false) {
    if (net.geometry().width() != trace.meta.width ||
        net.geometry().height() != trace.meta.height) {
      detail::throw_geometry_mismatch(trace.meta);
    }
    detail::check_replay_net(trace.meta, net, allow_config_mismatch);

    // One uniform shift keeps every push at cycle >= 1.  A trace cannot
    // legally contain events before cycle 2 (a push at cycle >= 1
    // commits at >= 2), but shift defensively instead of failing on
    // hand-crafted traces.
    sim::Cycle shift = 0;
    if (!trace.events.empty()) {
      const sim::Cycle c0 = trace.events.front().cycle;
      shift = c0 >= 2 ? 0 : 2 - c0;
      std::uint32_t max_uid = 0;
      for (const TraceEvent& e : trace.events) {
        max_uid = std::max(max_uid, e.uid);
      }
      net.reserve_flit_uids(max_uid + 1);
    }

    // Split the (cycle-sorted) event stream by source node; per-node
    // subsequences stay cycle-sorted.
    std::vector<std::vector<TraceEvent>> per_node(
        static_cast<std::size_t>(net.num_nodes()));
    for (const TraceEvent& e : trace.events) {
      per_node[e.src].push_back(e);
    }

    injectors_.reserve(static_cast<std::size_t>(net.num_nodes()));
    sinks_.reserve(static_cast<std::size_t>(net.num_nodes()));
    for (int n = 0; n < net.num_nodes(); ++n) {
      injectors_.push_back(std::make_unique<Injector>(
          net.sched_of(n), net, n,
          std::move(per_node[static_cast<std::size_t>(n)]),
          trace.meta.coord_bits, shift));
    }
    for (int n = 0; n < net.num_nodes(); ++n) {
      sinks_.push_back(std::make_unique<Sink>(net.sched_of(n), net, n));
    }
  }

  /// Legacy signature (pre-sharding); `sched` must be the scheduler the
  /// fabric was built on and is otherwise unused.
  BasicTraceReplayer(sim::Scheduler& /*sched*/, N& net, const Trace& trace,
                     bool allow_config_mismatch = false)
      : BasicTraceReplayer(net, trace, allow_config_mismatch) {}

  std::uint64_t injected() const {
    std::uint64_t total = 0;
    for (const auto& i : injectors_) total += i->injected();
    return total;
  }
  std::uint64_t delivered() const {
    std::uint64_t total = 0;
    for (const auto& s : sinks_) total += s->count();
    return total;
  }
  sim::Cycle last_delivery_cycle() const {
    sim::Cycle last = 0;
    for (const auto& s : sinks_) last = std::max(last, s->last_delivery());
    return last;
  }

 private:
  /// Feeds one node's recorded events into its inject FIFO on schedule.
  class Injector final : public sim::Component {
   public:
    Injector(sim::Scheduler& sched, N& net, int node,
             std::vector<TraceEvent> events, int coord_bits, sim::Cycle shift)
        : sim::Component(sched, "replay.injector" + std::to_string(node)),
          q_(net.inject(node)),
          coord_bits_(coord_bits),
          shift_(shift),
          events_(std::move(events)) {
      if (!events_.empty()) {
        sched.wake_at(*this, events_.front().cycle + shift_ - 1);
      }
    }

    void tick(sim::Cycle now) override {
      while (next_ < events_.size()) {
        const TraceEvent& e = events_[next_];
        const sim::Cycle push_at = e.cycle + shift_ - 1;
        if (push_at > now) {
          scheduler().wake_at(*this, push_at);
          return;
        }
        if (!q_.can_push()) {
          // Should not happen when replaying onto the recorded fabric
          // (the recorded run injected on schedule, so the queue drains
          // on schedule), but transformed traces (rate-compressed,
          // merged) can legitimately oversubscribe a queue; retry
          // deterministically rather than dropping.
          wake();
          return;
        }
        noc::Flit f = noc::decode_flit(e.payload, coord_bits_);
        f.uid = e.uid;
        q_.push(f);
        ++injected_;
        ++next_;
      }
    }

    std::uint64_t injected() const { return injected_; }

   private:
    sim::Fifo<noc::Flit>& q_;
    int coord_bits_;
    sim::Cycle shift_;
    std::vector<TraceEvent> events_;
    std::size_t next_ = 0;
    std::uint64_t injected_ = 0;
  };

  /// Drains one node's eject queue (stand-in for the PE/MPMMU consumer).
  /// Counters are per-sink — shards read and reduce them only after the
  /// run, never across threads.
  class Sink final : public sim::Component {
   public:
    Sink(sim::Scheduler& sched, N& net, int node)
        : sim::Component(sched, "replay.sink" + std::to_string(node)),
          q_(net.eject(node)) {
      q_.set_consumer(this);
    }

    void tick(sim::Cycle now) override {
      while (!q_.empty()) {
        q_.pop();
        ++count_;
        // Delivery into the eject queue happened one cycle before the
        // sink sees it (FIFO commit latency).
        last_delivery_ = std::max(last_delivery_, now - 1);
      }
    }

    std::uint64_t count() const { return count_; }
    sim::Cycle last_delivery() const { return last_delivery_; }

   private:
    sim::Fifo<noc::Flit>& q_;
    std::uint64_t count_ = 0;
    sim::Cycle last_delivery_ = 0;
  };

  std::vector<std::unique_ptr<Injector>> injectors_;
  std::vector<std::unique_ptr<Sink>> sinks_;
};

using TraceReplayer = BasicTraceReplayer<noc::Network>;
using XyTraceReplayer = BasicTraceReplayer<noc::XyNetwork>;

/// Convenience: replay `trace` on `net`, running `sched` to completion.
/// Throws if the geometry or (v2) fabric config mismatches, or the
/// cycle limit is hit.
template <typename N>
ReplayResult run_replay(sim::Scheduler& sched, N& net, const Trace& trace,
                        sim::Cycle limit = 50'000'000,
                        bool allow_config_mismatch = false) {
  BasicTraceReplayer<N> rep(net, trace, allow_config_mismatch);
  sched.run_or_throw(limit);
  ReplayResult r;
  r.cycles = sched.now();
  r.flits_injected = rep.injected();
  r.flits_delivered = rep.delivered();
  r.last_delivery_cycle = rep.last_delivery_cycle();
  return r;
}

/// Sharded variant: per-node injectors/sinks already live on their
/// node's shard; the domain runs the lockstep loop.
template <typename N>
ReplayResult run_replay(sim::SimDomain& dom, N& net, const Trace& trace,
                        sim::Cycle limit = 50'000'000,
                        bool allow_config_mismatch = false) {
  BasicTraceReplayer<N> rep(net, trace, allow_config_mismatch);
  dom.run_or_throw(limit);
  net.refresh_stats();
  ReplayResult r;
  r.cycles = dom.now();
  r.flits_injected = rep.injected();
  r.flits_delivered = rep.delivered();
  r.last_delivery_cycle = rep.last_delivery_cycle();
  return r;
}

}  // namespace medea::workload
