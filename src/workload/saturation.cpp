#include "workload/saturation.h"

#include <stdexcept>

namespace medea::workload {

std::vector<double> load_points(const LoadSweepSpec& spec) {
  if (!spec.loads.empty()) return spec.loads;
  if (spec.step <= 0.0 || spec.stop < spec.start) {
    throw std::invalid_argument(
        "load sweep: need step > 0 and stop >= start (or explicit loads)");
  }
  std::vector<double> out;
  // Walk in integer steps — accumulating doubles would drift and can
  // drop/duplicate the final point.
  for (int i = 0;; ++i) {
    const double load = spec.start + spec.step * i;
    if (load > spec.stop + 1e-12) break;
    out.push_back(load);
  }
  return out;
}

SaturationCurve sweep_load(const LoadSweepSpec& spec) {
  const Workload& w = WorkloadRegistry::instance().at(spec.workload);
  if (w.kind() != WorkloadKind::kSynthetic) {
    throw std::invalid_argument(
        "load sweep: workload '" + spec.workload +
        "' is not a synthetic pattern (saturation sweeps walk an "
        "injection rate)");
  }
  const std::vector<double> loads = load_points(spec);
  if (loads.empty()) {
    throw std::invalid_argument("load sweep: no load points to run");
  }

  SaturationCurve curve;
  curve.workload = spec.workload;
  curve.network =
      spec.base.synthetic.has_value() ? spec.base.synthetic->network
                                      : SyntheticParams{}.network;

  for (const double load : loads) {
    RunRequest req = spec.base;
    if (!req.synthetic.has_value()) req.synthetic = SyntheticParams{};
    req.synthetic->injection_rate = load;
    req.measurement.collect = true;
    req.measurement.phased = true;

    LoadPoint pt;
    pt.requested_load = load;
    pt.measurement = run_workload(w, req).measurement;
    const MeasurementResult& m = pt.measurement;
    pt.saturated = !m.drained || (m.offered_load > 0.0 &&
                                  m.accepted_throughput <
                                      spec.saturation_ratio * m.offered_load);
    if (m.accepted_throughput > curve.peak_accepted) {
      curve.peak_accepted = m.accepted_throughput;
    }
    if (pt.saturated && curve.saturation_load < 0.0) {
      curve.saturation_load = load;
    }
    curve.points.push_back(pt);
    if (pt.saturated && spec.stop_at_saturation) break;
  }
  return curve;
}

}  // namespace medea::workload
