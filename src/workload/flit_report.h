#pragma once

#include <string>

#include "noc/flit_tracer.h"
#include "workload/timeline.h"

/// \file flit_report.h
/// Exporters over telemetry::FlitTrace: the self-describing flit-trace
/// JSON dump ("medea-flittrace-v1", validated by
/// scripts/check_telemetry.py --flit-trace) and the top-K worst-packet
/// forensics text report.  The Perfetto flow-event rendering lives with
/// the other trace_event machinery in timeline.h (format_chrome_trace).

namespace medea::workload {

/// Self-describing JSON: run identity, sampling setup, the latency
/// decomposition summary, hop/deflection histograms, per-link (node x
/// direction) utilization grids, the worst-K packets with their full hop
/// chains, and the complete columnar packet/hop tables.
std::string format_flit_trace_json(const telemetry::FlitTrace& ft,
                                   const TimelineMeta& meta, int worst_k = 8);

/// Human-readable forensics: the k highest-latency packets, each with
/// its latency decomposition and full hop chain (deflections flagged).
std::string format_worst_flits(const telemetry::FlitTrace& ft, int k);

}  // namespace medea::workload
