#include "workload/replay.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace medea::workload {

TraceReplayer::Sink::Sink(sim::Scheduler& sched, noc::Network& net, int node,
                          TraceReplayer& owner)
    : sim::Component(sched, "replay.sink" + std::to_string(node)),
      q_(net.eject(node)),
      owner_(owner) {
  q_.set_consumer(this);
}

void TraceReplayer::Sink::tick(sim::Cycle now) {
  while (!q_.empty()) {
    q_.pop();
    ++count_;
    // Delivery into the eject queue happened one cycle before the sink
    // sees it (FIFO commit latency).
    owner_.last_delivery_ = std::max(owner_.last_delivery_, now - 1);
  }
}

TraceReplayer::TraceReplayer(sim::Scheduler& sched, noc::Network& net,
                             const Trace& trace)
    : sim::Component(sched, "replay.injector"),
      net_(net),
      coord_bits_(trace.meta.coord_bits),
      events_(trace.events) {
  if (net.geometry().width() != trace.meta.width ||
      net.geometry().height() != trace.meta.height) {
    throw std::runtime_error(
        "TraceReplayer: network geometry does not match the trace (" +
        std::to_string(trace.meta.width) + "x" +
        std::to_string(trace.meta.height) + " recorded)");
  }
  sinks_.reserve(static_cast<std::size_t>(net.num_nodes()));
  for (int n = 0; n < net.num_nodes(); ++n) {
    sinks_.push_back(std::make_unique<Sink>(sched, net, n, *this));
  }
  if (!events_.empty()) {
    // Flits are pushed into the inject FIFO one cycle before their
    // recorded injection cycle.  A trace cannot legally contain events
    // before cycle 2 (a push at cycle >= 1 commits at >= 2), but shift
    // defensively instead of failing on hand-crafted traces.
    const sim::Cycle c0 = events_.front().cycle;
    shift_ = c0 >= 2 ? 0 : 2 - c0;
    std::uint32_t max_uid = 0;
    for (const TraceEvent& e : events_) max_uid = std::max(max_uid, e.uid);
    net_.reserve_flit_uids(max_uid + 1);
    sched.wake_at(*this, c0 + shift_ - 1);
  }
}

std::uint64_t TraceReplayer::delivered() const {
  std::uint64_t total = 0;
  for (const auto& s : sinks_) total += s->count();
  return total;
}

void TraceReplayer::tick(sim::Cycle now) {
  while (next_ < events_.size()) {
    const TraceEvent& e = events_[next_];
    const sim::Cycle push_at = e.cycle + shift_ - 1;
    if (push_at > now) {
      scheduler().wake_at(*this, push_at);
      return;
    }
    auto& q = net_.inject(static_cast<int>(e.src));
    if (!q.can_push()) {
      // Should not happen when replaying onto the recorded geometry (the
      // recorded run injected on schedule, so the queue drains on
      // schedule); retry deterministically rather than dropping.
      wake();
      return;
    }
    noc::Flit f = noc::decode_flit(e.payload, coord_bits_);
    f.uid = e.uid;
    q.push(f);
    ++injected_;
    ++next_;
  }
}

ReplayResult run_replay(sim::Scheduler& sched, noc::Network& net,
                        const Trace& trace, sim::Cycle limit) {
  TraceReplayer rep(sched, net, trace);
  sched.run_or_throw(limit);
  ReplayResult r;
  r.cycles = sched.now();
  r.flits_injected = rep.injected();
  r.flits_delivered = rep.delivered();
  r.last_delivery_cycle = rep.last_delivery_cycle();
  return r;
}

}  // namespace medea::workload
