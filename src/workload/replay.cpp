#include "workload/replay.h"

#include <stdexcept>
#include <string>

namespace medea::workload {
namespace detail {

namespace {

[[noreturn]] void throw_config_mismatch(const TraceMeta& meta,
                                        const TraceNetConfig& offered) {
  throw std::runtime_error(
      "trace replay: network configuration does not match the recording\n"
      "  recorded: " + meta.net.describe() + "\n"
      "  offered:  " + offered.describe() + "\n"
      "the replayed timing would silently diverge from the recording; "
      "pass allow_config_mismatch (CLI: --force) to replay anyway");
}

}  // namespace

void throw_geometry_mismatch(const TraceMeta& meta) {
  throw std::runtime_error(
      "trace replay: network geometry does not match the trace (" +
      std::to_string(meta.width) + "x" + std::to_string(meta.height) +
      " recorded); use the remap transform to retarget the trace");
}

void check_replay_net(const TraceMeta& meta, const noc::Network& net,
                      bool allow_mismatch) {
  if (meta.version < 2 || allow_mismatch) return;
  const TraceNetConfig offered = TraceNetConfig::from(net.config());
  if (meta.net.kind != TraceNetKind::kDeflection || meta.net != offered) {
    throw_config_mismatch(meta, offered);
  }
}

void check_replay_net(const TraceMeta& meta, const noc::XyNetwork& net,
                      bool allow_mismatch) {
  if (meta.version < 2 || allow_mismatch) return;
  const TraceNetConfig offered =
      TraceNetConfig::from(net.config(), net.torus_wrap());
  if (meta.net.kind != TraceNetKind::kBufferedXy || meta.net != offered) {
    throw_config_mismatch(meta, offered);
  }
}

}  // namespace detail
}  // namespace medea::workload
