#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "noc/flit.h"
#include "noc/router.h"
#include "sim/types.h"

/// \file trace.h
/// Flit-injection traces: the on-disk format plus the recorder that
/// captures one from any running workload.
///
/// A trace is the complete list of network-injection events of a run —
/// for every flit that entered the switched fabric: the cycle it was
/// injected, source and destination node, the logic-packet size it
/// belongs to, its uid (kept so the deflection router's oldest-first
/// tie-breaks replay bit-identically) and the wire-encoded flit word
/// (Fig. 5 payload tag).  Replaying a trace re-injects exactly these
/// flits at exactly these cycles into a bare NoC — no PEs, caches or
/// coroutines — which is the fast-forward mode the DSE sweeps use
/// (trace-driven replay in the Graphite tradition).
///
/// On-disk format (version 1), little-endian:
///
///   "MDTR"  magic (4 bytes)
///   u8      version
///   varint  width, height, coord_bits, seed, total_cycles
///   varint  workload-name length, then that many bytes
///   varint  event count
///   per event, all varint:
///     cycle delta (vs previous event; first is absolute),
///     src, dst, size, uid, payload word
///
/// All integers are LEB128 varints, which makes typical traces ~6-10
/// bytes per event instead of the 24+ of a naive fixed layout.  parse()
/// validates magic, version, geometry and bounds and throws
/// std::runtime_error on anything malformed or truncated.

namespace medea::workload {

inline constexpr std::uint8_t kTraceVersion = 1;

/// One network-injection event (one flit entering the fabric).
struct TraceEvent {
  sim::Cycle cycle = 0;       ///< router-injection cycle
  std::uint16_t src = 0;      ///< linear node id of the injecting router
  std::uint16_t dst = 0;      ///< linear node id of the destination
  std::uint16_t size = 1;     ///< flits in the logic packet (burst_size+1)
  std::uint32_t uid = 0;      ///< flit uid (replay preserves it)
  std::uint64_t payload = 0;  ///< wire-encoded flit word (encode_flit)

  bool operator==(const TraceEvent&) const = default;
};

/// Trace header: where the trace came from and how to rebuild the NoC.
struct TraceMeta {
  int width = 0;
  int height = 0;
  int coord_bits = 0;  ///< coordinate width used to encode `payload`
  std::uint64_t seed = 0;            ///< seed of the recorded run
  sim::Cycle total_cycles = 0;       ///< cycle count of the recorded run
  std::string workload;              ///< registry name of the recorded workload

  bool operator==(const TraceMeta&) const = default;
};

struct Trace {
  TraceMeta meta;
  std::vector<TraceEvent> events;  ///< sorted by cycle (recorded order)

  bool operator==(const Trace&) const = default;
};

/// Coordinate bit width needed to encode any coordinate of a WxH torus
/// (>= 1 so degenerate 1x1 fabrics still encode).
int coord_bits_for(int width, int height);

std::vector<std::uint8_t> serialize_trace(const Trace& t);
Trace parse_trace(const std::uint8_t* data, std::size_t size);

/// File I/O; both throw std::runtime_error on I/O or format errors.
void save_trace(const Trace& t, const std::string& path);
Trace load_trace(const std::string& path);

/// Header-only load: magic/version/geometry validation plus the meta
/// fields, without decoding events.  Used to size recorders and NoCs
/// for a trace before (or without) paying the full parse.
TraceMeta load_trace_meta(const std::string& path);

/// Captures injection events from a live NoC (attach with
/// Network::set_observer before the run, take() afterwards).
class TraceRecorder final : public noc::FlitObserver {
 public:
  TraceRecorder(int width, int height);

  void on_inject(sim::Cycle now, int node, const noc::Flit& f) override;
  void on_deliver(sim::Cycle, int, const noc::Flit&) override {}

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Finalize: move the captured events into a Trace with a filled-in
  /// header.  The recorder is empty afterwards and can keep recording.
  Trace take(sim::Cycle total_cycles = 0, std::string workload = {},
             std::uint64_t seed = 0);

 private:
  int width_;
  int height_;
  int coord_bits_;
  std::vector<TraceEvent> events_;
};

}  // namespace medea::workload
