#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "noc/flit.h"
#include "noc/router.h"
#include "noc/xy_router.h"
#include "sim/types.h"

/// \file trace.h
/// Flit-injection traces: the on-disk format plus the recorder that
/// captures one from any running workload.
///
/// A trace is the complete list of network-injection events of a run —
/// for every flit that entered the switched fabric: the cycle it was
/// injected, source and destination node, the logic-packet size it
/// belongs to, its uid (kept so the deflection router's oldest-first
/// tie-breaks replay bit-identically) and the wire-encoded flit word
/// (Fig. 5 payload tag).  Replaying a trace re-injects exactly these
/// flits at exactly these cycles into a bare NoC — no PEs, caches or
/// coroutines — which is the fast-forward mode the DSE sweeps use
/// (trace-driven replay in the Graphite tradition).
///
/// On-disk format, little-endian:
///
///   "MDTR"  magic (4 bytes)
///   u8      version (1 or 2)
///   varint  width, height, coord_bits, seed, total_cycles
///   varint  workload-name length, then that many bytes
///   --- version >= 2 only: the recording fabric, self-described ---
///   varint  network kind (0 = deflection, 1 = buffered XY)
///   varint  eject_per_cycle, inject_queue_depth, eject_queue_depth,
///           input_buffer_depth
///   varint  flags (bit0 = random_tie_break, bit1 = torus_wrap)
///   varint  extension length, then that many bytes (reserved; readers
///           skip them, so future minor additions need no version bump)
///   --- events ---
///   varint  event count
///   per event, all varint:
///     cycle delta (vs previous event; first is absolute),
///     src, dst, size, uid, payload word
///
/// All integers are LEB128 varints, which makes typical traces ~6-10
/// bytes per event instead of the 24+ of a naive fixed layout.  parse()
/// validates magic, version, geometry, fabric config and bounds and
/// throws std::runtime_error on anything malformed or truncated.
///
/// Version 1 traces (no fabric block) still parse: the meta comes back
/// with `version == 1` and a default-constructed net config, and replay
/// skips the config check for them (nothing was recorded to check).
/// serialize_trace() writes the version the meta carries — a v1 trace
/// stays v1 on re-save (its fabric was never recorded; stamping
/// defaults would fabricate a config that replay would then enforce).
/// Fresh recordings are always v2.

namespace medea::workload {

inline constexpr std::uint8_t kTraceVersion = 2;
inline constexpr std::uint8_t kTraceVersionV1 = 1;

/// Which router model recorded the trace (and which one replay must
/// rebuild to reproduce it).
enum class TraceNetKind : std::uint8_t {
  kDeflection = 0,  ///< the MEDEA hot-potato router (noc::Network)
  kBufferedXy = 1,  ///< the buffered XY baseline (noc::XyNetwork)
};

const char* to_string(TraceNetKind k);

/// The recording fabric's configuration, persisted in the v2 header so a
/// trace is self-describing: replay can rebuild the exact NoC, and
/// replaying onto a *different* configuration becomes an explicit,
/// opt-in act instead of a silent accident.
struct TraceNetConfig {
  TraceNetKind kind = TraceNetKind::kDeflection;
  int eject_per_cycle = 1;
  int inject_queue_depth = 2;
  int eject_queue_depth = 4;
  int input_buffer_depth = 4;     ///< buffered-XY only
  bool random_tie_break = false;  ///< deflection only
  bool torus_wrap = false;        ///< buffered-XY only

  bool operator==(const TraceNetConfig&) const = default;

  static TraceNetConfig from(const noc::RouterConfig& rc);
  static TraceNetConfig from(const noc::XyRouterConfig& rc, bool torus_wrap);

  /// Project back onto the per-model config structs (fields the other
  /// model owns keep this struct's values and are simply unused).
  noc::RouterConfig router_config() const;
  noc::XyRouterConfig xy_router_config() const;

  /// One-line human rendering for error messages and `inspect`.
  std::string describe() const;
};

/// One network-injection event (one flit entering the fabric).
struct TraceEvent {
  sim::Cycle cycle = 0;       ///< router-injection cycle
  std::uint16_t src = 0;      ///< linear node id of the injecting router
  std::uint16_t dst = 0;      ///< linear node id of the destination
  std::uint16_t size = 1;     ///< flits in the logic packet (burst_size+1)
  std::uint32_t uid = 0;      ///< flit uid (replay preserves it)
  std::uint64_t payload = 0;  ///< wire-encoded flit word (encode_flit)

  bool operator==(const TraceEvent&) const = default;
};

std::string to_string(const TraceEvent& e);

/// Trace header: where the trace came from and how to rebuild the NoC.
struct TraceMeta {
  int width = 0;
  int height = 0;
  int coord_bits = 0;  ///< coordinate width used to encode `payload`
  std::uint64_t seed = 0;            ///< seed of the recorded run
  sim::Cycle total_cycles = 0;       ///< cycle count of the recorded run
  std::string workload;              ///< registry name of the recorded workload
  /// Format version this meta was parsed from (kTraceVersion for traces
  /// built in memory).  v1 metas carry a default `net` with no recorded
  /// meaning; consumers must gate config checks on `version >= 2`.
  std::uint8_t version = kTraceVersion;
  TraceNetConfig net{};              ///< the recording fabric (v2+)

  bool operator==(const TraceMeta&) const = default;
};

struct Trace {
  TraceMeta meta;
  std::vector<TraceEvent> events;  ///< sorted by cycle (recorded order)

  bool operator==(const Trace&) const = default;
};

/// Coordinate bit width needed to encode any coordinate of a WxH torus
/// (>= 1 so degenerate 1x1 fabrics still encode).
int coord_bits_for(int width, int height);

std::vector<std::uint8_t> serialize_trace(const Trace& t);
Trace parse_trace(const std::uint8_t* data, std::size_t size);

/// File I/O; both throw std::runtime_error on I/O or format errors.
void save_trace(const Trace& t, const std::string& path);
Trace load_trace(const std::string& path);

/// Header-only load: magic/version/geometry validation plus the meta
/// fields, without decoding events.  Used to size recorders and NoCs
/// for a trace before (or without) paying the full parse.
TraceMeta load_trace_meta(const std::string& path);

/// Full semantic validation beyond what parse_trace() enforces
/// structurally: cycle ordering, node bounds, packet sizes, payload
/// consistency (the wire word must decode back to the event's src/dst)
/// and a serialize/parse round-trip.  Every trace-transform output must
/// pass this; throws std::runtime_error with a specific message.
void validate_trace(const Trace& t);

/// Captures injection events from a live NoC (attach with
/// Network::set_observer or XyNetwork::set_observer before the run,
/// take() afterwards).
class TraceRecorder final : public noc::FlitObserver {
 public:
  TraceRecorder(int width, int height);

  void on_inject(sim::Cycle now, int node, const noc::Flit& f) override;
  void on_deliver(sim::Cycle, int, const noc::Flit&) override {}

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Describe the fabric being recorded; stamped into the v2 header by
  /// take().  Defaults to a default-configured deflection NoC.
  void set_net_config(const TraceNetConfig& net) { net_ = net; }

  /// Finalize: move the captured events into a Trace with a filled-in
  /// header.  The recorder is empty afterwards and can keep recording.
  Trace take(sim::Cycle total_cycles = 0, std::string workload = {},
             std::uint64_t seed = 0);

 private:
  int width_;
  int height_;
  int coord_bits_;
  TraceNetConfig net_{};
  std::vector<TraceEvent> events_;
};

}  // namespace medea::workload
