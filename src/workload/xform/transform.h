#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "workload/trace.h"

/// \file transform.h
/// The trace toolkit's transform pipeline: composable passes that turn
/// one recorded MDTR trace into another valid one.
///
/// PR 2's record/replay engine reproduces a recording bit-identically —
/// and nothing else.  Trace-driven simulators get their scenario
/// diversity from *manipulating* traces (booksim's netrace workflows,
/// Graphite's trace capture modes): rescale the injection schedule for a
/// rate sweep, remap a small recording onto a bigger fabric, merge two
/// tenants onto one NoC, cut a steady-state window out of a long run.
/// Each pass here consumes a Trace and produces a new Trace that passes
/// validate_trace() — so any pipeline output can be saved, inspected,
/// diffed and replayed like a first-class recording.  Transformed
/// traces replay *cleanly* (every flit delivered), but only an untouched
/// trace replays bit-identically to its recording; transforms annotate
/// meta.workload with their provenance so inspect shows what happened.
///
/// All passes are pure functions of their input (no hidden state), so
/// they compose freely via Pipeline and are safe to share across sweep
/// worker threads.

namespace medea::workload::xform {

/// One trace-to-trace pass.
class TraceTransform {
 public:
  virtual ~TraceTransform() = default;

  /// Human-readable pass description, e.g. "scale(2x)"; also appended to
  /// the output's meta.workload provenance annotation.
  virtual std::string describe() const = 0;

  /// Produce the transformed trace; throws std::invalid_argument or
  /// std::runtime_error when the input cannot legally be transformed
  /// (e.g. remap target smaller than the recording).
  virtual Trace apply(const Trace& in) const = 0;
};

/// Injection-rate scaling: factor > 1 compresses the injection schedule
/// (cycles divided by factor => higher offered rate), factor < 1
/// stretches it.  Event order, uids and payloads are untouched, so the
/// scaled trace exercises the same spatial pattern at a different load —
/// the fast-forward axis of a rate sweep over one recording.
class RateScale final : public TraceTransform {
 public:
  explicit RateScale(double factor);

  std::string describe() const override;
  Trace apply(const Trace& in) const override;

 private:
  double factor_;
};

enum class RemapMode : std::uint8_t {
  /// Coordinate-preserving embedding: node (x,y) of the recording maps
  /// to node (x,y) of the (>=) target fabric.  Bijective onto its image,
  /// so per-flit traffic is unchanged; only the torus wrap distances
  /// (and thus routing) differ.
  kBijective,
  /// Tile the recording across the target: the target dims must be
  /// integer multiples of the recording's, and every tile replays an
  /// offset copy of the trace with re-spaced uids — an instant
  /// multi-tenant scale-up of a small recording.
  kTiled,
};

const char* to_string(RemapMode m);

/// Retarget a trace onto a different torus geometry (see RemapMode).
/// Re-encodes every payload word for the target's coordinate width and
/// re-linearizes node ids; the result is a valid trace of the target
/// fabric.  Targets are capped at 256 nodes (the 8-bit wire SRCID).
class RemapNodes final : public TraceTransform {
 public:
  RemapNodes(int new_width, int new_height,
             RemapMode mode = RemapMode::kBijective);

  std::string describe() const override;
  Trace apply(const Trace& in) const override;

 private:
  int new_width_;
  int new_height_;
  RemapMode mode_;
};

/// Keep only events with begin <= cycle < end, optionally rebasing the
/// kept window to start near cycle 2 (so a mid-run excerpt replays
/// immediately instead of idling through the cut prefix).
class TimeWindow final : public TraceTransform {
 public:
  TimeWindow(sim::Cycle begin, sim::Cycle end, bool rebase = true);

  std::string describe() const override;
  Trace apply(const Trace& in) const override;

 private:
  sim::Cycle begin_;
  sim::Cycle end_;
  bool rebase_;
};

/// Ordered sequence of passes applied left to right.
class Pipeline final : public TraceTransform {
 public:
  Pipeline() = default;

  Pipeline& add(std::unique_ptr<TraceTransform> pass) {
    passes_.push_back(std::move(pass));
    return *this;
  }

  bool empty() const { return passes_.empty(); }
  std::size_t size() const { return passes_.size(); }

  std::string describe() const override;
  Trace apply(const Trace& in) const override;

 private:
  std::vector<std::unique_ptr<TraceTransform>> passes_;
};

/// Merge two recordings of the *same* fabric (geometry and net config
/// must match) into one multi-tenant trace: events interleave by cycle
/// (ties keep a's first), and b's uids are re-spaced above a's so the
/// deflection router's age/uid tie-breaks stay collision-free.
Trace merge_traces(const Trace& a, const Trace& b);

}  // namespace medea::workload::xform
