#include "workload/xform/inspect.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace medea::workload::xform {

TraceInspection inspect_trace(const Trace& t, int time_buckets) {
  if (time_buckets < 1) time_buckets = 1;
  TraceInspection r;
  r.num_events = t.events.size();
  r.num_nodes = t.meta.width * t.meta.height;
  const std::size_t n = static_cast<std::size_t>(r.num_nodes);
  r.injections_per_source.assign(n, 0);
  r.rate_per_source.assign(n, 0.0);
  r.traffic_matrix.assign(n * n, 0);
  r.size_histogram.assign(static_cast<std::size_t>(noc::kMaxPacketFlits) + 1,
                          0);
  r.time_histogram.assign(static_cast<std::size_t>(time_buckets), 0);
  if (t.events.empty()) return r;

  r.first_cycle = t.events.front().cycle;
  r.last_cycle = t.events.back().cycle;
  const sim::Cycle span = r.last_cycle - r.first_cycle + 1;
  r.bucket_width = (span + static_cast<sim::Cycle>(time_buckets) - 1) /
                   static_cast<sim::Cycle>(time_buckets);
  if (r.bucket_width == 0) r.bucket_width = 1;

  for (const TraceEvent& e : t.events) {
    r.injections_per_source[e.src]++;
    r.traffic_matrix[e.src * n + e.dst]++;
    if (e.size < r.size_histogram.size()) r.size_histogram[e.size]++;
    const std::size_t bucket = static_cast<std::size_t>(
        (e.cycle - r.first_cycle) / r.bucket_width);
    r.time_histogram[std::min(bucket,
                              r.time_histogram.size() - 1)]++;
  }
  for (std::size_t s = 0; s < n; ++s) {
    r.rate_per_source[s] =
        static_cast<double>(r.injections_per_source[s]) /
        static_cast<double>(span);
  }
  r.mean_rate = static_cast<double>(r.num_events) /
                (static_cast<double>(span) * static_cast<double>(r.num_nodes));
  r.max_matrix_count =
      *std::max_element(r.traffic_matrix.begin(), r.traffic_matrix.end());
  return r;
}

namespace {

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

/// Intensity ramp for the heatmap (log-ish perception: blank for zero).
char shade(std::uint64_t v, std::uint64_t max) {
  static const char ramp[] = ".:-=+*#%@";
  if (v == 0) return ' ';
  if (max <= 1) return ramp[8];
  const std::size_t idx =
      static_cast<std::size_t>(static_cast<double>(v) /
                               static_cast<double>(max) * 8.0);
  return ramp[std::min<std::size_t>(idx, 8)];
}

}  // namespace

std::string format_inspection(const Trace& t, const TraceInspection& insp) {
  std::string out;
  const TraceMeta& m = t.meta;
  appendf(out, "trace: %s\n", m.workload.c_str());
  appendf(out, "  format     MDTR v%d\n", m.version);
  appendf(out, "  fabric     %dx%d torus, %s\n", m.width, m.height,
          m.net.describe().c_str());
  appendf(out, "  seed       %llu\n",
          static_cast<unsigned long long>(m.seed));
  appendf(out, "  recorded   %llu cycles, %zu injection events\n",
          static_cast<unsigned long long>(m.total_cycles), insp.num_events);
  if (insp.num_events == 0) return out;
  appendf(out, "  active     cycles %llu..%llu\n",
          static_cast<unsigned long long>(insp.first_cycle),
          static_cast<unsigned long long>(insp.last_cycle));
  appendf(out, "  mean rate  %.4f flits/node/cycle\n", insp.mean_rate);

  out += "  packet sizes: ";
  bool first = true;
  for (std::size_t s = 1; s < insp.size_histogram.size(); ++s) {
    if (insp.size_histogram[s] == 0) continue;
    if (!first) out += ", ";
    appendf(out, "%zu flits x %llu", s,
            static_cast<unsigned long long>(insp.size_histogram[s]));
    first = false;
  }
  out += "\n\n";

  out += "per-source injection rate (flits/cycle):\n";
  for (int y = 0; y < m.height; ++y) {
    out += "  ";
    for (int x = 0; x < m.width; ++x) {
      appendf(out, " %6.4f", insp.rate_per_source[static_cast<std::size_t>(
                                 y * m.width + x)]);
    }
    out += "\n";
  }

  out += "\nsrc->dst heatmap (rows = src, cols = dst, max=";
  appendf(out, "%llu flits):\n",
          static_cast<unsigned long long>(insp.max_matrix_count));
  const std::size_t n = static_cast<std::size_t>(insp.num_nodes);
  for (std::size_t s = 0; s < n; ++s) {
    appendf(out, "  %3zu |", s);
    for (std::size_t d = 0; d < n; ++d) {
      out += shade(insp.traffic_matrix[s * n + d], insp.max_matrix_count);
    }
    out += "|\n";
  }

  out += "\ninjections over time (";
  appendf(out, "%llu cycles/bucket):\n  |",
          static_cast<unsigned long long>(insp.bucket_width));
  const std::uint64_t tmax = *std::max_element(insp.time_histogram.begin(),
                                               insp.time_histogram.end());
  for (std::uint64_t b : insp.time_histogram) out += shade(b, tmax);
  out += "|\n";
  return out;
}

TraceDiffResult diff_traces(const Trace& a, const Trace& b) {
  TraceDiffResult r;
  r.a_events = a.events.size();
  r.b_events = b.events.size();

  // Meta, field by field, so the report names the culprit.
  std::string meta_diff;
  const TraceMeta& ma = a.meta;
  const TraceMeta& mb = b.meta;
  auto field = [&meta_diff](const char* name, const std::string& va,
                            const std::string& vb) {
    if (va == vb || !meta_diff.empty()) return;
    meta_diff = std::string("meta.") + name + ": " + va + " vs " + vb;
  };
  field("width", std::to_string(ma.width), std::to_string(mb.width));
  field("height", std::to_string(ma.height), std::to_string(mb.height));
  field("coord_bits", std::to_string(ma.coord_bits),
        std::to_string(mb.coord_bits));
  field("seed", std::to_string(ma.seed), std::to_string(mb.seed));
  field("total_cycles", std::to_string(ma.total_cycles),
        std::to_string(mb.total_cycles));
  field("workload", ma.workload, mb.workload);
  field("version", std::to_string(ma.version), std::to_string(mb.version));
  field("net", ma.net.describe(), mb.net.describe());
  r.meta_equal = meta_diff.empty();

  const std::size_t common = std::min(r.a_events, r.b_events);
  for (std::size_t i = 0; i < common; ++i) {
    if (a.events[i] != b.events[i]) {
      r.diverge_index = i;
      r.first_difference = "event " + std::to_string(i) + ":\n  a: " +
                           to_string(a.events[i]) + "\n  b: " +
                           to_string(b.events[i]);
      return r;
    }
  }
  if (r.a_events != r.b_events) {
    r.first_difference =
        "event count: " + std::to_string(r.a_events) + " vs " +
        std::to_string(r.b_events) + " (streams agree up to event " +
        std::to_string(common) + ")";
    return r;
  }
  if (!r.meta_equal) {
    r.first_difference = meta_diff;
    return r;
  }
  r.identical = true;
  return r;
}

}  // namespace medea::workload::xform
