#include "workload/xform/inspect.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace medea::workload::xform {

TraceInspection inspect_trace(const Trace& t, int time_buckets) {
  if (time_buckets < 1) time_buckets = 1;
  TraceInspection r;
  r.num_events = t.events.size();
  r.num_nodes = t.meta.width * t.meta.height;
  const std::size_t n = static_cast<std::size_t>(r.num_nodes);
  r.injections_per_source.assign(n, 0);
  r.rate_per_source.assign(n, 0.0);
  r.traffic_matrix.assign(n * n, 0);
  r.size_histogram.assign(static_cast<std::size_t>(noc::kMaxPacketFlits) + 1,
                          0);
  r.time_histogram.assign(static_cast<std::size_t>(time_buckets), 0);
  if (t.events.empty()) return r;

  r.first_cycle = t.events.front().cycle;
  r.last_cycle = t.events.back().cycle;
  const sim::Cycle span = r.last_cycle - r.first_cycle + 1;
  r.bucket_width = (span + static_cast<sim::Cycle>(time_buckets) - 1) /
                   static_cast<sim::Cycle>(time_buckets);
  if (r.bucket_width == 0) r.bucket_width = 1;

  for (const TraceEvent& e : t.events) {
    r.injections_per_source[e.src]++;
    r.traffic_matrix[e.src * n + e.dst]++;
    if (e.size < r.size_histogram.size()) r.size_histogram[e.size]++;
    const std::size_t bucket = static_cast<std::size_t>(
        (e.cycle - r.first_cycle) / r.bucket_width);
    r.time_histogram[std::min(bucket,
                              r.time_histogram.size() - 1)]++;
  }
  for (std::size_t s = 0; s < n; ++s) {
    r.rate_per_source[s] =
        static_cast<double>(r.injections_per_source[s]) /
        static_cast<double>(span);
  }
  r.mean_rate = static_cast<double>(r.num_events) /
                (static_cast<double>(span) * static_cast<double>(r.num_nodes));
  r.max_matrix_count =
      *std::max_element(r.traffic_matrix.begin(), r.traffic_matrix.end());
  return r;
}

namespace {

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

/// Intensity ramp for the heatmap (log-ish perception: blank for zero).
char shade(std::uint64_t v, std::uint64_t max) {
  static const char ramp[] = ".:-=+*#%@";
  if (v == 0) return ' ';
  if (max <= 1) return ramp[8];
  const std::size_t idx =
      static_cast<std::size_t>(static_cast<double>(v) /
                               static_cast<double>(max) * 8.0);
  return ramp[std::min<std::size_t>(idx, 8)];
}

}  // namespace

std::string format_inspection(const Trace& t, const TraceInspection& insp) {
  std::string out;
  const TraceMeta& m = t.meta;
  appendf(out, "trace: %s\n", m.workload.c_str());
  appendf(out, "  format     MDTR v%d\n", m.version);
  appendf(out, "  fabric     %dx%d torus, %s\n", m.width, m.height,
          m.net.describe().c_str());
  appendf(out, "  seed       %llu\n",
          static_cast<unsigned long long>(m.seed));
  appendf(out, "  recorded   %llu cycles, %zu injection events\n",
          static_cast<unsigned long long>(m.total_cycles), insp.num_events);
  if (insp.num_events == 0) return out;
  appendf(out, "  active     cycles %llu..%llu\n",
          static_cast<unsigned long long>(insp.first_cycle),
          static_cast<unsigned long long>(insp.last_cycle));
  appendf(out, "  mean rate  %.4f flits/node/cycle\n", insp.mean_rate);

  out += "  packet sizes: ";
  bool first = true;
  for (std::size_t s = 1; s < insp.size_histogram.size(); ++s) {
    if (insp.size_histogram[s] == 0) continue;
    if (!first) out += ", ";
    appendf(out, "%zu flits x %llu", s,
            static_cast<unsigned long long>(insp.size_histogram[s]));
    first = false;
  }
  out += "\n\n";

  out += "per-source injection rate (flits/cycle):\n";
  for (int y = 0; y < m.height; ++y) {
    out += "  ";
    for (int x = 0; x < m.width; ++x) {
      appendf(out, " %6.4f", insp.rate_per_source[static_cast<std::size_t>(
                                 y * m.width + x)]);
    }
    out += "\n";
  }

  out += "\nsrc->dst heatmap (rows = src, cols = dst, max=";
  appendf(out, "%llu flits):\n",
          static_cast<unsigned long long>(insp.max_matrix_count));
  const std::size_t n = static_cast<std::size_t>(insp.num_nodes);
  for (std::size_t s = 0; s < n; ++s) {
    appendf(out, "  %3zu |", s);
    for (std::size_t d = 0; d < n; ++d) {
      out += shade(insp.traffic_matrix[s * n + d], insp.max_matrix_count);
    }
    out += "|\n";
  }

  out += "\ninjections over time (";
  appendf(out, "%llu cycles/bucket):\n  |",
          static_cast<unsigned long long>(insp.bucket_width));
  const std::uint64_t tmax = *std::max_element(insp.time_histogram.begin(),
                                               insp.time_histogram.end());
  for (std::uint64_t b : insp.time_histogram) out += shade(b, tmax);
  out += "|\n";
  return out;
}

namespace {

/// Minimal JSON emission helpers (the schema is flat enough that a
/// dependency-free emitter stays readable; strings that reach here are
/// workload names and fabric descriptions, escaped defensively anyway).
void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          appendf(out, "\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_u64_array(std::string& out, const std::vector<std::uint64_t>& v) {
  out += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ", ";
    appendf(out, "%llu", static_cast<unsigned long long>(v[i]));
  }
  out += ']';
}

void append_double_array(std::string& out, const std::vector<double>& v) {
  out += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ", ";
    appendf(out, "%.17g", v[i]);
  }
  out += ']';
}

}  // namespace

std::string format_inspection_json(const Trace& t,
                                   const TraceInspection& insp) {
  const TraceMeta& m = t.meta;
  std::string out = "{\n  \"schema_version\": 1,\n  \"trace\": {\n";
  out += "    \"workload\": ";
  append_json_string(out, m.workload);
  appendf(out, ",\n    \"format_version\": %d,\n", m.version);
  appendf(out, "    \"width\": %d,\n    \"height\": %d,\n", m.width, m.height);
  appendf(out, "    \"coord_bits\": %d,\n", m.coord_bits);
  appendf(out, "    \"seed\": %llu,\n",
          static_cast<unsigned long long>(m.seed));
  appendf(out, "    \"total_cycles\": %llu,\n",
          static_cast<unsigned long long>(m.total_cycles));
  out += "    \"net\": ";
  append_json_string(out, m.net.describe());
  out += "\n  },\n";

  appendf(out, "  \"num_events\": %zu,\n", insp.num_events);
  appendf(out, "  \"num_nodes\": %d,\n", insp.num_nodes);
  appendf(out, "  \"first_cycle\": %llu,\n",
          static_cast<unsigned long long>(insp.first_cycle));
  appendf(out, "  \"last_cycle\": %llu,\n",
          static_cast<unsigned long long>(insp.last_cycle));
  appendf(out, "  \"mean_rate\": %.17g,\n", insp.mean_rate);

  out += "  \"injections_per_source\": ";
  append_u64_array(out, insp.injections_per_source);
  out += ",\n  \"rate_per_source\": ";
  append_double_array(out, insp.rate_per_source);

  // Row-major src->dst matrix, emitted as one array per source row so
  // consumers index it [src][dst] without reshaping.
  out += ",\n  \"traffic_matrix\": [";
  const std::size_t n = static_cast<std::size_t>(insp.num_nodes);
  for (std::size_t s = 0; s < n; ++s) {
    out += s == 0 ? "\n    " : ",\n    ";
    append_u64_array(
        out, {insp.traffic_matrix.begin() + static_cast<std::ptrdiff_t>(s * n),
              insp.traffic_matrix.begin() +
                  static_cast<std::ptrdiff_t>((s + 1) * n)});
  }
  out += "\n  ],\n";
  appendf(out, "  \"max_matrix_count\": %llu,\n",
          static_cast<unsigned long long>(insp.max_matrix_count));

  // Index = packet size in flits (index 0 unused, matching the struct).
  out += "  \"size_histogram\": ";
  append_u64_array(out, insp.size_histogram);
  out += ",\n  \"time_histogram\": ";
  append_u64_array(out, insp.time_histogram);
  appendf(out, ",\n  \"time_bucket_width\": %llu\n}\n",
          static_cast<unsigned long long>(insp.bucket_width));
  return out;
}

TraceDiffResult diff_traces(const Trace& a, const Trace& b) {
  TraceDiffResult r;
  r.a_events = a.events.size();
  r.b_events = b.events.size();

  // Meta, field by field, so the report names the culprit.
  std::string meta_diff;
  const TraceMeta& ma = a.meta;
  const TraceMeta& mb = b.meta;
  auto field = [&meta_diff](const char* name, const std::string& va,
                            const std::string& vb) {
    if (va == vb || !meta_diff.empty()) return;
    meta_diff = std::string("meta.") + name + ": " + va + " vs " + vb;
  };
  field("width", std::to_string(ma.width), std::to_string(mb.width));
  field("height", std::to_string(ma.height), std::to_string(mb.height));
  field("coord_bits", std::to_string(ma.coord_bits),
        std::to_string(mb.coord_bits));
  field("seed", std::to_string(ma.seed), std::to_string(mb.seed));
  field("total_cycles", std::to_string(ma.total_cycles),
        std::to_string(mb.total_cycles));
  field("workload", ma.workload, mb.workload);
  field("version", std::to_string(ma.version), std::to_string(mb.version));
  field("net", ma.net.describe(), mb.net.describe());
  r.meta_equal = meta_diff.empty();

  const std::size_t common = std::min(r.a_events, r.b_events);
  for (std::size_t i = 0; i < common; ++i) {
    if (a.events[i] != b.events[i]) {
      r.diverge_index = i;
      r.first_difference = "event " + std::to_string(i) + ":\n  a: " +
                           to_string(a.events[i]) + "\n  b: " +
                           to_string(b.events[i]);
      return r;
    }
  }
  if (r.a_events != r.b_events) {
    r.first_difference =
        "event count: " + std::to_string(r.a_events) + " vs " +
        std::to_string(r.b_events) + " (streams agree up to event " +
        std::to_string(common) + ")";
    return r;
  }
  if (!r.meta_equal) {
    r.first_difference = meta_diff;
    return r;
  }
  r.identical = true;
  return r;
}

}  // namespace medea::workload::xform
