#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/trace.h"

/// \file inspect.h
/// The trace toolkit's analyzers: summarize what a trace *is* (inspect)
/// and pinpoint where two traces *differ* (diff).
///
/// inspect_trace() computes the standard characterization set for a
/// flit trace: per-source injection counts and rates, the src->dst
/// spatial traffic matrix (the heatmap that makes hotspots and
/// permutation structure visible at a glance), packet-size and
/// injection-over-time histograms.  format_inspection() renders it for
/// the CLI.
///
/// diff_traces() is the fidelity oracle: it reports the first
/// divergence between two traces, field by field — which is how CI can
/// assert that record -> save -> load -> re-record round-trips are
/// bit-identical, and how a user finds out *where* a transformed or
/// re-recorded trace starts to differ from its source.

namespace medea::workload::xform {

struct TraceInspection {
  std::size_t num_events = 0;
  int num_nodes = 0;
  sim::Cycle first_cycle = 0;
  sim::Cycle last_cycle = 0;
  /// Mean offered load over the active span, flits/node/cycle.
  double mean_rate = 0.0;

  std::vector<std::uint64_t> injections_per_source;  ///< [num_nodes]
  std::vector<double> rate_per_source;               ///< flits/cycle
  /// Row-major src*num_nodes + dst flit counts (the spatial heatmap).
  std::vector<std::uint64_t> traffic_matrix;
  std::uint64_t max_matrix_count = 0;

  /// events whose packet size field is s (index 0 unused).
  std::vector<std::uint64_t> size_histogram;
  /// Injections per uniform time bucket across [first_cycle, last_cycle].
  std::vector<std::uint64_t> time_histogram;
  sim::Cycle bucket_width = 0;
};

TraceInspection inspect_trace(const Trace& t, int time_buckets = 16);

/// Human-readable rendering: header block, per-source rate table, the
/// src->dst heatmap and the injection-over-time sparkline.
std::string format_inspection(const Trace& t, const TraceInspection& insp);

/// Machine-readable rendering of the same inspection: one JSON document
/// with the trace header, per-source counts/rates, the src->dst traffic
/// matrix (row-major, rows = src) and both histograms — so notebooks and
/// scripts consume the matrices directly instead of scraping the text
/// rendering (`trace_tool inspect --json`).
std::string format_inspection_json(const Trace& t,
                                   const TraceInspection& insp);

struct TraceDiffResult {
  bool identical = false;
  bool meta_equal = false;
  std::size_t a_events = 0;
  std::size_t b_events = 0;
  /// Index of the first differing event; SIZE_MAX when the event streams
  /// agree over the common prefix (a pure length or meta difference).
  std::size_t diverge_index = static_cast<std::size_t>(-1);
  /// Human-readable description of the first difference found ("" when
  /// identical): the meta field or the two diverging events.
  std::string first_difference;
};

TraceDiffResult diff_traces(const Trace& a, const Trace& b);

}  // namespace medea::workload::xform
