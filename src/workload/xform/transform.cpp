#include "workload/xform/transform.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "noc/coord.h"

namespace medea::workload::xform {

namespace {

/// Provenance note appended to meta.workload, e.g. "jacobi|scale(2x)".
void annotate(TraceMeta& meta, const std::string& what) {
  meta.workload += "|";
  meta.workload += what;
}

std::string format_factor(double f) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", f);
  return buf;
}

std::uint32_t max_uid_of(const Trace& t) {
  std::uint32_t m = 0;
  for (const TraceEvent& e : t.events) m = std::max(m, e.uid);
  return m;
}

}  // namespace

const char* to_string(RemapMode m) {
  switch (m) {
    case RemapMode::kBijective: return "bijective";
    case RemapMode::kTiled: return "tiled";
  }
  return "?";
}

// ---------------------------------------------------------------------
// RateScale
// ---------------------------------------------------------------------

RateScale::RateScale(double factor) : factor_(factor) {
  if (!(factor > 0.0) || factor > 1e6) {
    throw std::invalid_argument("RateScale: factor must be in (0, 1e6]");
  }
}

std::string RateScale::describe() const {
  return "scale(" + format_factor(factor_) + "x)";
}

Trace RateScale::apply(const Trace& in) const {
  Trace out;
  out.meta = in.meta;
  annotate(out.meta, describe());
  out.events.reserve(in.events.size());
  // cycle/factor is monotone in cycle, and rounding preserves the
  // (non-strict) ordering, so the output stays sorted without a re-sort.
  const auto scale = [this](sim::Cycle c) {
    return static_cast<sim::Cycle>(static_cast<double>(c) / factor_ + 0.5);
  };
  for (TraceEvent e : in.events) {
    e.cycle = std::max<sim::Cycle>(2, scale(e.cycle));
    out.events.push_back(e);
  }
  out.meta.total_cycles = scale(in.meta.total_cycles);
  if (!out.events.empty()) {
    out.meta.total_cycles =
        std::max(out.meta.total_cycles, out.events.back().cycle);
  }
  return out;
}

// ---------------------------------------------------------------------
// RemapNodes
// ---------------------------------------------------------------------

RemapNodes::RemapNodes(int new_width, int new_height, RemapMode mode)
    : new_width_(new_width), new_height_(new_height), mode_(mode) {
  if (new_width < 1 || new_height < 1) {
    throw std::invalid_argument("RemapNodes: target dims must be >= 1");
  }
  if (new_width * new_height > 256) {
    throw std::invalid_argument(
        "RemapNodes: target fabric exceeds 256 nodes (8-bit wire SRCID)");
  }
}

std::string RemapNodes::describe() const {
  return std::string("remap(") + std::to_string(new_width_) + "x" +
         std::to_string(new_height_) + "," + to_string(mode_) + ")";
}

Trace RemapNodes::apply(const Trace& in) const {
  const int w = in.meta.width;
  const int h = in.meta.height;
  if (mode_ == RemapMode::kBijective) {
    if (new_width_ < w || new_height_ < h) {
      throw std::invalid_argument(
          "RemapNodes: bijective remap target must be at least the "
          "recorded " + std::to_string(w) + "x" + std::to_string(h));
    }
  } else {
    if (new_width_ % w != 0 || new_height_ % h != 0) {
      throw std::invalid_argument(
          "RemapNodes: tiled remap target dims must be integer multiples "
          "of the recorded " + std::to_string(w) + "x" + std::to_string(h));
    }
  }
  const int tiles_x = mode_ == RemapMode::kTiled ? new_width_ / w : 1;
  const int tiles_y = mode_ == RemapMode::kTiled ? new_height_ / h : 1;
  const int tiles = tiles_x * tiles_y;

  // Re-space uids per tile so clones never collide (the deflection
  // router tie-breaks on uid below equal ages).
  const std::uint64_t uid_span = static_cast<std::uint64_t>(max_uid_of(in)) + 1;
  if (uid_span * static_cast<std::uint64_t>(tiles) >
      std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument(
        "RemapNodes: tiled uid re-spacing overflows the 32-bit uid space");
  }

  const int new_bits = coord_bits_for(new_width_, new_height_);
  Trace out;
  out.meta = in.meta;
  out.meta.width = new_width_;
  out.meta.height = new_height_;
  out.meta.coord_bits = new_bits;
  annotate(out.meta, describe());
  out.events.reserve(in.events.size() * static_cast<std::size_t>(tiles));

  for (const TraceEvent& e : in.events) {
    noc::Flit f = noc::decode_flit(e.payload, in.meta.coord_bits);
    const int src_x = e.src % w, src_y = e.src / w;
    const int dst_x = f.dst.x, dst_y = f.dst.y;
    for (int ty = 0; ty < tiles_y; ++ty) {
      for (int tx = 0; tx < tiles_x; ++tx) {
        TraceEvent o = e;
        const int nsx = src_x + tx * w, nsy = src_y + ty * h;
        const int ndx = dst_x + tx * w, ndy = dst_y + ty * h;
        o.src = static_cast<std::uint16_t>(nsy * new_width_ + nsx);
        o.dst = static_cast<std::uint16_t>(ndy * new_width_ + ndx);
        const int tile = ty * tiles_x + tx;
        o.uid = static_cast<std::uint32_t>(
            e.uid + uid_span * static_cast<std::uint64_t>(tile));
        noc::Flit nf = f;
        nf.dst = noc::Coord{static_cast<std::uint8_t>(ndx),
                            static_cast<std::uint8_t>(ndy)};
        nf.src_id = static_cast<std::uint8_t>(o.src & 0xFF);
        o.payload = noc::encode_flit(nf, new_bits);
        out.events.push_back(o);
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// TimeWindow
// ---------------------------------------------------------------------

TimeWindow::TimeWindow(sim::Cycle begin, sim::Cycle end, bool rebase)
    : begin_(begin), end_(end), rebase_(rebase) {
  if (begin >= end) {
    throw std::invalid_argument("TimeWindow: begin must be < end");
  }
}

std::string TimeWindow::describe() const {
  return "window(" + std::to_string(begin_) + ":" + std::to_string(end_) +
         (rebase_ ? "" : ",norebase") + ")";
}

Trace TimeWindow::apply(const Trace& in) const {
  Trace out;
  out.meta = in.meta;
  annotate(out.meta, describe());
  const sim::Cycle shift = rebase_ && begin_ > 2 ? begin_ - 2 : 0;
  for (TraceEvent e : in.events) {
    if (e.cycle < begin_ || e.cycle >= end_) continue;
    e.cycle -= shift;
    out.events.push_back(e);
  }
  const sim::Cycle span_end = std::min(in.meta.total_cycles, end_);
  out.meta.total_cycles = span_end > shift ? span_end - shift : 0;
  if (!out.events.empty()) {
    out.meta.total_cycles =
        std::max(out.meta.total_cycles, out.events.back().cycle);
  }
  return out;
}

// ---------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------

std::string Pipeline::describe() const {
  std::string s;
  for (const auto& p : passes_) {
    if (!s.empty()) s += " | ";
    s += p->describe();
  }
  return s.empty() ? "identity" : s;
}

Trace Pipeline::apply(const Trace& in) const {
  if (passes_.empty()) return in;
  Trace t = passes_.front()->apply(in);
  for (std::size_t i = 1; i < passes_.size(); ++i) {
    t = passes_[i]->apply(t);
  }
  return t;
}

// ---------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------

Trace merge_traces(const Trace& a, const Trace& b) {
  if (a.meta.width != b.meta.width || a.meta.height != b.meta.height ||
      a.meta.coord_bits != b.meta.coord_bits) {
    throw std::invalid_argument(
        "merge_traces: traces target different geometries (" +
        std::to_string(a.meta.width) + "x" + std::to_string(a.meta.height) +
        " vs " + std::to_string(b.meta.width) + "x" +
        std::to_string(b.meta.height) + "); remap one of them first");
  }
  if (a.meta.net != b.meta.net) {
    throw std::invalid_argument(
        "merge_traces: traces record different fabrics (" +
        a.meta.net.describe() + " vs " + b.meta.net.describe() + ")");
  }
  const std::uint64_t uid_base = static_cast<std::uint64_t>(max_uid_of(a)) + 1;
  if (uid_base + max_uid_of(b) > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument(
        "merge_traces: uid re-spacing overflows the 32-bit uid space");
  }

  Trace out;
  out.meta = a.meta;
  out.meta.workload =
      "merge(" + a.meta.workload + "+" + b.meta.workload + ")";
  out.meta.total_cycles = std::max(a.meta.total_cycles, b.meta.total_cycles);
  out.events.reserve(a.events.size() + b.events.size());

  std::size_t i = 0, j = 0;
  while (i < a.events.size() || j < b.events.size()) {
    const bool take_a =
        j >= b.events.size() ||
        (i < a.events.size() && a.events[i].cycle <= b.events[j].cycle);
    if (take_a) {
      out.events.push_back(a.events[i++]);
    } else {
      TraceEvent e = b.events[j++];
      e.uid = static_cast<std::uint32_t>(e.uid + uid_base);
      out.events.push_back(e);
    }
  }
  return out;
}

}  // namespace medea::workload::xform
