#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "noc/flit_tracer.h"
#include "noc/traffic.h"
#include "noc/xy_router.h"
#include "sim/domain.h"
#include "sim/stats.h"
#include "sim/telemetry.h"
#include "sim/types.h"
#include "workload/measure.h"
#include "workload/trace.h"

/// \file workload.h
/// The workload engine: one name-addressable interface over everything
/// the simulator can run.
///
/// The registry unifies the full-system applications, the synthetic NoC
/// patterns and trace-driven replay behind one factory keyed by name, so
/// the DSE sweeps, the benches and the CLI can run *any* scenario
/// uniformly (the BookSim-style pluggable-traffic idea, applied to the
/// whole workload axis):
///
///   jacobi | jacobi-sync | jacobi-sm    full-system Jacobi variants
///   reduction | reduction-sm            full-system all-reduce variants
///   alltoall                            full-system eMPI exchange
///   uniform | hotspot | transpose | neighbor | bitrev
///                                       NoC-only synthetic patterns
///   replay                              NoC-only trace replay
///
/// ## The run API
///
/// A run is described by a RunRequest: the machine configuration plus
/// *one* kind-specific parameter section (SyntheticParams / AppParams /
/// ReplayParams) and the measurement knobs.  Sections are optional —
/// leave them disengaged for defaults — but engaging a section the
/// workload cannot honor is a validation error, not a silent no-op:
/// passing replay knobs to `uniform` or an injection rate to `jacobi`
/// fails loudly (see validate_request()).
///
/// Every run returns a RunResult carrying, besides the classic cycle
/// count and headline metric, a MeasurementResult with per-flit latency
/// percentiles (p50/p99/p999) and offered-vs-accepted throughput —
/// collected through the FlitObserver hook, so apps, synthetic patterns
/// and replays on either fabric are all measured the same way.
/// Synthetic workloads additionally support phased warmup/measure/drain
/// runs (MeasurementParams::phased) and, via sweep_load() in
/// saturation.h, full offered-load saturation sweeps.
///
/// Any workload can still be recorded (record_workload() attaches a
/// TraceRecorder to the run's NoC) and the resulting trace replayed
/// through the `replay` workload or run_replay() directly.

namespace medea::workload {

/// What a workload fundamentally is — decides which RunRequest section
/// applies and which measurement modes are meaningful.
enum class WorkloadKind : std::uint8_t {
  kApp,        ///< full-system application (PEs + caches + MPMMU)
  kSynthetic,  ///< NoC-only rate-controlled traffic pattern
  kReplay,     ///< NoC-only trace replay
};

const char* to_string(WorkloadKind k);

/// Knobs for synthetic NoC traffic (WorkloadKind::kSynthetic).
struct SyntheticParams {
  double injection_rate = 0.1;   ///< offered load, flits/node/cycle
  noc::InjectionSpec process{};  ///< arrival process (Bernoulli/on-off)
  int flits_per_node = 1000;     ///< per-node budget (non-phased runs)
  int hotspot_node = 0;          ///< target of the hotspot pattern

  /// Fabric the pattern runs on: "deflection" (the paper's router) or
  /// "xy" (the buffered XY baseline).  With "xy" the run uses the
  /// xy_router config below and can be recorded and replayed just like
  /// a deflection run.
  std::string network = "deflection";
  noc::XyRouterConfig xy_router{};
  bool xy_torus_wrap = false;
};

/// Knobs for full-system applications (WorkloadKind::kApp).
struct AppParams {
  int size = -1;              ///< problem size (grid n / elems); -1 = default
  int iterations = 1;         ///< timed iterations / reduce rounds
  int warmup_iterations = 1;  ///< untimed warm-up iterations
};

/// Knobs for trace replay (WorkloadKind::kReplay).
struct ReplayParams {
  std::string trace_path;  ///< recorded trace to re-inject (required)
  /// Injection-rate scale applied to the trace before replaying
  /// (1.0 = verbatim; see xform::RateScale).
  double trace_scale = 1.0;
  /// Replay a v2 trace even when the machine's RouterConfig does not
  /// match the recorded fabric (the CLI --force flag).  Without it a
  /// mismatch fails loudly — replaying onto a different NoC
  /// configuration must be explicit, never an accident.
  bool force_config = false;
};

/// Telemetry knobs (any workload kind): cycle-domain time-series
/// sampling of the run's stats into RunResult::timeline.
struct TelemetryParams {
  /// Snapshot every N simulated cycles.  0 = off — the run then pays
  /// nothing on the kernel hot path (see sim::CycleHook).
  sim::Cycle sample_every = 0;

  bool operator==(const TelemetryParams&) const = default;
};

/// Per-flit lifecycle tracing knobs (any workload kind): sampled hop
/// chains into RunResult::flit_trace.  Tracing is strictly read-only —
/// traced runs are bit-identical to untraced runs (the differential
/// tests assert it); off (the default) costs nothing on the hot path.
struct FlitTraceParams {
  /// Trace 1-in-N packets by uid hash.  0 = off, 1 = every packet.
  std::uint32_t sample_every = 0;
  /// Packets in the worst-packet forensics report and Perfetto flows.
  int worst_k = 8;

  bool operator==(const FlitTraceParams&) const = default;
};

/// Everything a run needs: the machine, one kind-specific section, and
/// the measurement setup.  Engage exactly the section your workload
/// kind uses (or none, for defaults); the others must stay nullopt.
struct RunRequest {
  core::MedeaConfig machine{};  ///< NoC size, cores, L1, arbiter, kernel...
  std::uint64_t seed = 1;
  bool verify = false;  ///< check against the host reference (apps)

  std::optional<SyntheticParams> synthetic;
  std::optional<AppParams> app;
  std::optional<ReplayParams> replay;

  MeasurementParams measurement{};
  TelemetryParams telemetry{};
  FlitTraceParams flit_trace{};
};

/// What a run produced.
struct RunResult {
  sim::Cycle cycles = 0;        ///< simulated cycles to completion
  double metric = 0.0;          ///< headline metric (see metric_name)
  std::string metric_name;      ///< e.g. "cycles_per_iteration"
  std::uint64_t flits_delivered = 0;  ///< NoC deliveries during the run
  bool verified_ok = true;      ///< false only when verification failed
  sim::StatSet stats;           ///< aggregate hardware statistics

  /// Latency percentiles and throughput (empty — latency.count == 0 —
  /// when measurement.collect was off).
  MeasurementResult measurement;

  /// Cycle-domain time series (empty when telemetry.sample_every was 0).
  /// Export via workload/timeline.h.
  telemetry::Timeline timeline;

  /// Sampled per-flit hop chains (disabled — flit_trace.enabled() false —
  /// when flit_trace.sample_every was 0).  Export via
  /// workload/flit_report.h.
  telemetry::FlitTrace flit_trace;
};

/// Per-run plumbing handed to Workload::run() by the engine: the
/// caller's observer (e.g. a TraceRecorder) and, when measurement is
/// on, the controller already chained in front of it.  Workloads attach
/// observer() to their NoC; phased synthetic runs drive the controller
/// directly.
struct RunContext {
  noc::FlitObserver* raw_observer = nullptr;
  MeasurementController* measure = nullptr;
  telemetry::Sampler* sampler = nullptr;  ///< non-null when sampling is on

  /// Set by the engine when more than a single chain of observers must
  /// see the fabric (e.g. measurement + recorder + flit tracer composed
  /// through a FlitObserverTee); overrides the default choice below.
  noc::FlitObserver* fabric_override = nullptr;

  /// What to hang on the fabric: the engine's tee when set, else the
  /// controller when measuring (it forwards to raw_observer), else the
  /// raw observer.
  noc::FlitObserver* observer() const {
    if (fabric_override != nullptr) return fabric_override;
    return measure != nullptr ? static_cast<noc::FlitObserver*>(measure)
                              : raw_observer;
  }

  /// Registers the stats with the sampler and hooks it into the
  /// scheduler (which also adds the sched.* pressure series).  No-op —
  /// and free — when the request did not ask for sampling.  Prefer
  /// ScopedTelemetry below: the sampler outlives the workload's
  /// scheduler and fabric, so something must capture the final window
  /// and detach *before* they are destroyed.
  void attach_telemetry(sim::Scheduler& sched,
                        const sim::StatSet& stats) const {
    if (sampler == nullptr) return;
    sampler->add_stats("", stats);
    sampler->attach(sched);
  }

  /// Sharded-domain overload: the sampler hooks into the domain's serial
  /// phase and sums the sched.* series across shards.
  void attach_telemetry(sim::SimDomain& dom, const sim::StatSet& stats) const {
    if (sampler == nullptr) return;
    sampler->add_stats("", stats);
    sampler->attach(dom);
  }
};

/// RAII telemetry attachment for workload implementations: attaches the
/// run's sampler (if any) on construction and, when it leaves scope,
/// captures the final partial window and detaches — while the scheduler
/// and StatSet it samples are still alive.  Declare one *after* the
/// fabric whose stats it registers and before running:
///
///   noc::Network net(sched, ...);
///   ScopedTelemetry telemetry(ctx, sched, net.stats());
///   ... run ...
class ScopedTelemetry {
 public:
  ScopedTelemetry(const RunContext& ctx, sim::Scheduler& sched,
                  const sim::StatSet& stats)
      : sampler_(ctx.sampler), sched_(&sched) {
    ctx.attach_telemetry(sched, stats);
  }
  /// Sharded-domain variant: finishes at the domain's global clock.
  ScopedTelemetry(const RunContext& ctx, sim::SimDomain& dom,
                  const sim::StatSet& stats)
      : sampler_(ctx.sampler), dom_(&dom) {
    ctx.attach_telemetry(dom, stats);
  }
  ~ScopedTelemetry() {
    if (sampler_ != nullptr) {
      sampler_->finish(dom_ != nullptr ? dom_->now() : sched_->now());
    }
  }

  /// Register a further StatSet under `prefix` (e.g. the MPMMU's and the
  /// per-core caches' stats for app workloads, so --timeline carries the
  /// memory system too).  No-op — and free — without sampling.
  void add(const std::string& prefix, const sim::StatSet& stats) {
    if (sampler_ != nullptr) sampler_->add_stats(prefix, stats);
  }

  ScopedTelemetry(const ScopedTelemetry&) = delete;
  ScopedTelemetry& operator=(const ScopedTelemetry&) = delete;

 private:
  telemetry::Sampler* sampler_;
  sim::Scheduler* sched_ = nullptr;
  sim::SimDomain* dom_ = nullptr;
};

/// One runnable scenario.  run() builds a fresh simulator every call
/// and any internal state is behavior-free (e.g. the replay workload's
/// trace cache), so workloads are safe to run concurrently from sweep
/// worker threads.
class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;
  virtual std::string description() const = 0;
  virtual WorkloadKind kind() const = 0;

  /// NoC-only workloads build just a Network (no PEs/MPMMU); core and
  /// cache knobs in the config are ignored.
  bool noc_only() const { return kind() != WorkloadKind::kApp; }

  /// {width, height} of the NoC a run will actually build.  Defaults to
  /// the machine torus; the replay workload answers from the trace
  /// header instead.  Recorders must be sized from this (a recorder
  /// sized for the wrong geometry would mis-linearize node ids and
  /// truncate coordinates).
  virtual std::pair<int, int> noc_dims(const RunRequest& req) const {
    return {req.machine.noc_width, req.machine.noc_height};
  }

  /// The fabric a run will actually build, for the v2 trace header.
  /// Defaults to the machine's deflection router; workloads that build
  /// something else (the XY baseline, replay from a header) override it
  /// so recordings stay self-describing.
  virtual TraceNetConfig net_config(const RunRequest& req) const {
    return TraceNetConfig::from(req.machine.router);
  }

  /// Run the workload.  Implementations attach ctx.observer() to the
  /// NoC; the engine owns request validation and measurement
  /// finalization, so prefer run_by_name()/run_workload() over calling
  /// this directly.
  virtual RunResult run(const RunRequest& req, RunContext& ctx) const = 0;
};

/// Engaging a RunRequest section the workload cannot honor throws
/// std::invalid_argument naming the offending knob (replay knobs on a
/// synthetic pattern, an injection rate on an app, phased measurement
/// on anything that is not rate-controlled synthetic traffic, a replay
/// without a trace path...).
void validate_request(const RunRequest& req, const Workload& w);

/// Name-keyed workload factory.  Built-ins self-register on first use;
/// add() extends it with custom scenarios at runtime.
class WorkloadRegistry {
 public:
  /// The process-wide registry (built-ins pre-registered).
  static WorkloadRegistry& instance();

  /// Register a workload; throws std::invalid_argument on duplicates.
  void add(std::unique_ptr<Workload> w);

  /// nullptr when unknown.
  const Workload* find(const std::string& name) const;

  /// Throws std::invalid_argument (listing known names) when unknown.
  const Workload& at(const std::string& name) const;

  /// All registered workloads, name-sorted.
  std::vector<const Workload*> list() const;

  /// All registered names, sorted (for error messages and --list).
  std::vector<std::string> names() const;

 private:
  WorkloadRegistry();
  std::map<std::string, std::unique_ptr<Workload>> by_name_;
};

/// Run `w` with a validated request: checks the request against the
/// workload kind, chains a MeasurementController in front of `observer`
/// when measurement is on, runs, and finalizes the measurement into the
/// result.
RunResult run_workload(const Workload& w, const RunRequest& req,
                       noc::FlitObserver* observer = nullptr);

/// Run the registry workload `name` (throws on unknown names and
/// invalid requests).
RunResult run_by_name(const std::string& name, const RunRequest& req,
                      noc::FlitObserver* observer = nullptr);

/// Run the workload selected by req.machine.workload.
RunResult run_configured(const RunRequest& req,
                         noc::FlitObserver* observer = nullptr);

/// Record workload `name` into a trace: run it once with a recorder on
/// the NoC, sized and described via the workload's noc_dims()/
/// net_config().  The header captures geometry, fabric config, seed and
/// cycle count.  `result` (optional) receives the run's RunResult —
/// including its measurement, since the recorder chains behind the
/// controller.
Trace record_workload(const std::string& name, const RunRequest& req,
                      RunResult* result = nullptr);

}  // namespace medea::workload
