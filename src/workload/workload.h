#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "noc/xy_router.h"
#include "sim/stats.h"
#include "sim/types.h"
#include "workload/trace.h"

/// \file workload.h
/// The workload engine: one name-addressable interface over everything
/// the simulator can run.
///
/// Before this layer existed the repo could exercise exactly two
/// hand-written applications (jacobi, reduction) plus an ad-hoc synthetic
/// traffic helper, each behind its own entry point.  The registry unifies
/// them — and trace-driven replay — behind one factory keyed by name, so
/// the DSE sweeps, the benches and the CLI can run *any* scenario
/// uniformly (the BookSim-style pluggable-traffic idea, applied to the
/// whole workload axis):
///
///   jacobi | jacobi-sync | jacobi-sm    full-system Jacobi variants
///   reduction | reduction-sm            full-system all-reduce variants
///   uniform | hotspot | transpose | neighbor
///                                       NoC-only synthetic patterns
///   replay                              NoC-only trace replay
///
/// Any workload can be recorded (pass a TraceRecorder; it attaches to the
/// run's NoC) and the resulting trace replayed through the `replay`
/// workload or run_replay() directly.

namespace medea::workload {

/// Everything a workload needs to run.  `config` carries the machine
/// knobs (NoC size, cores, L1, arbiter...); the rest are workload knobs
/// with conventional meanings — workloads ignore what they don't use.
struct WorkloadParams {
  core::MedeaConfig config{};
  int size = -1;                ///< problem size (grid n / elements); -1 = default
  int iterations = 1;           ///< timed iterations / reduce rounds
  int warmup_iterations = 1;    ///< untimed warm-up (apps only)
  double injection_rate = 0.1;  ///< flits/node/cycle (synthetic only)
  int flits_per_node = 1000;    ///< per-node budget (synthetic only)
  int hotspot_node = 0;         ///< target of the hotspot pattern
  std::uint64_t seed = 1;
  bool verify = false;          ///< check against the host reference
  std::string trace_path;       ///< input trace (replay workload only)

  /// Fabric the NoC-only synthetic patterns run on: "deflection" (the
  /// paper's router) or "xy" (the buffered XY baseline).  With "xy" the
  /// run uses `xy_router`/`xy_torus_wrap` below and can be recorded and
  /// replayed just like a deflection run.  Full-system apps ignore this.
  std::string network = "deflection";
  noc::XyRouterConfig xy_router{};
  bool xy_torus_wrap = false;

  /// Replay-only: injection-rate scale applied to the trace before
  /// replaying (1.0 = verbatim; see xform::RateScale).
  double trace_scale = 1.0;
  /// Replay-only: replay a v2 trace even when `config.router` does not
  /// match the recorded fabric (the CLI --force flag).  Without it a
  /// mismatch fails loudly — replaying onto a different NoC
  /// configuration must be explicit, never an accident.
  bool force_replay_config = false;
};

struct WorkloadResult {
  sim::Cycle cycles = 0;        ///< simulated cycles to completion
  double metric = 0.0;          ///< headline metric (see metric_name)
  std::string metric_name;      ///< e.g. "cycles_per_iteration"
  std::uint64_t flits_delivered = 0;  ///< NoC deliveries during the run
  bool verified_ok = true;      ///< false only when verification failed
  sim::StatSet stats;           ///< aggregate hardware statistics
};

/// One runnable scenario.  run() builds a fresh simulator every call
/// and any internal state is behavior-free (e.g. the replay workload's
/// trace cache), so workloads are safe to run concurrently from sweep
/// worker threads.
class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;
  virtual std::string description() const = 0;

  /// NoC-only workloads build just a Network (no PEs/MPMMU); core and
  /// cache knobs in the config are ignored.
  virtual bool noc_only() const { return false; }

  /// {width, height} of the NoC a run(p, ...) will actually build.
  /// Defaults to the config torus; the replay workload answers from the
  /// trace header instead.  Recorders must be sized from this (a
  /// recorder sized for the wrong geometry would mis-linearize node ids
  /// and truncate coordinates).
  virtual std::pair<int, int> noc_dims(const WorkloadParams& p) const {
    return {p.config.noc_width, p.config.noc_height};
  }

  /// The fabric a run(p, ...) will actually build, for the v2 trace
  /// header.  Defaults to the config's deflection router; workloads that
  /// build something else (the XY baseline, replay from a header)
  /// override it so recordings stay self-describing.
  virtual TraceNetConfig net_config(const WorkloadParams& p) const {
    return TraceNetConfig::from(p.config.router);
  }

  /// Run the workload.  When `observer` is non-null it is attached as
  /// the NoC's flit observer for the duration of the run (pass a
  /// TraceRecorder to capture a replayable trace, or any other
  /// FlitObserver for instrumentation).
  virtual WorkloadResult run(const WorkloadParams& p,
                             noc::FlitObserver* observer = nullptr) const = 0;
};

/// Name-keyed workload factory.  Built-ins self-register on first use;
/// add() extends it with custom scenarios at runtime.
class WorkloadRegistry {
 public:
  /// The process-wide registry (built-ins pre-registered).
  static WorkloadRegistry& instance();

  /// Register a workload; throws std::invalid_argument on duplicates.
  void add(std::unique_ptr<Workload> w);

  /// nullptr when unknown.
  const Workload* find(const std::string& name) const;

  /// Throws std::invalid_argument (listing known names) when unknown.
  const Workload& at(const std::string& name) const;

  /// All registered workloads, name-sorted.
  std::vector<const Workload*> list() const;

  /// All registered names, sorted (for error messages and --list).
  std::vector<std::string> names() const;

 private:
  WorkloadRegistry();
  std::map<std::string, std::unique_ptr<Workload>> by_name_;
};

/// Run the registry workload `name` (throws on unknown names).
WorkloadResult run_by_name(const std::string& name, const WorkloadParams& p,
                           noc::FlitObserver* observer = nullptr);

/// Run the workload selected by p.config.workload.
WorkloadResult run_configured(const WorkloadParams& p,
                              noc::FlitObserver* observer = nullptr);

/// Record workload `name` into a trace: run it once with a recorder on
/// the NoC, sized and described via the workload's noc_dims()/
/// net_config().  The header captures geometry, fabric config, seed and
/// cycle count.  `result` (optional) receives the run's WorkloadResult.
Trace record_workload(const std::string& name, const WorkloadParams& p,
                      WorkloadResult* result = nullptr);

}  // namespace medea::workload
