#pragma once

#include <string>
#include <vector>

#include "workload/measure.h"
#include "workload/workload.h"

/// \file saturation.h
/// Offered-load saturation sweeps: walk a synthetic pattern's injection
/// rate, run one phased (warmup/measure/drain) measurement per load
/// point, and report the saturation curve — accepted throughput and
/// latency percentiles vs offered load, the standard figure of merit
/// for a router (and the methodology behind the paper's NoC ablations).
///
/// Saturation shows up two ways, and either flags the point:
///  * accepted throughput falls below `saturation_ratio` x offered (the
///    fabric refuses offers faster than it delivers), or
///  * the drain phase never empties the fabric inside drain_limit
///    (latency is growing without bound; `drained` is false).

namespace medea::workload {

/// One saturation sweep: which synthetic workload, at which loads.
struct LoadSweepSpec {
  /// Registry name of a synthetic pattern (uniform/hotspot/...).
  std::string workload = "uniform";

  /// Template request: machine config, injection process, fabric choice
  /// and measurement phase lengths all come from here.  Each point
  /// overrides synthetic.injection_rate and forces measurement.phased.
  RunRequest base{};

  /// Explicit load points; empty means the start/stop/step ramp below.
  std::vector<double> loads;
  double start = 0.05;
  double stop = 0.65;
  double step = 0.05;

  /// Accepted < ratio x offered flags the point as saturated.
  double saturation_ratio = 0.9;

  /// Stop the sweep at the first saturated point (the rest of the ramp
  /// would only measure deeper congestion, ever more slowly).
  bool stop_at_saturation = false;
};

/// One measured point of the curve.
struct LoadPoint {
  double requested_load = 0.0;  ///< injection rate asked of the endpoints
  MeasurementResult measurement;
  bool saturated = false;
};

struct SaturationCurve {
  std::string workload;
  std::string network;  ///< "deflection" or "xy"
  std::vector<LoadPoint> points;
  /// First requested load flagged saturated; < 0 when the sweep never
  /// saturated (the fabric kept up through `stop`).
  double saturation_load = -1.0;
  /// Highest accepted throughput seen anywhere on the curve.
  double peak_accepted = 0.0;
};

/// The load points a spec will run (explicit list, or the ramp).
std::vector<double> load_points(const LoadSweepSpec& spec);

/// Run the sweep.  Throws std::invalid_argument when spec.workload is
/// not a synthetic pattern or the ramp is empty/ill-formed.
SaturationCurve sweep_load(const LoadSweepSpec& spec);

}  // namespace medea::workload
