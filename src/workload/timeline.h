#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "noc/flit_tracer.h"
#include "sim/telemetry.h"
#include "workload/measure.h"

/// \file timeline.h
/// Exporters over telemetry::Timeline: the self-describing JSON dump,
/// a flat CSV, the Chrome/Perfetto trace_event rendering, and the
/// scalar summary benches feed into their metrics maps.
///
/// The JSON schema ("medea-timeline-v1") is what scripts/check_telemetry.py
/// validates in CI and what bench_trend.py picks `timeline_*` metrics out
/// of.  Per-router `*.router.<id>.delivered` series are folded into
/// spatial heatmap frames (one WxH grid of per-window deltas per frame)
/// instead of being emitted as N independent series.

namespace medea::workload {

/// Run context the exporters stamp into their output: identity for the
/// trace process labels, geometry for heatmap folding, and the
/// measurement result whose warmup/measure/drain boundaries become
/// phase spans in the Chrome trace.
struct TimelineMeta {
  std::string workload;
  std::uint64_t seed = 0;
  int noc_width = 0;
  int noc_height = 0;
  MeasurementResult measurement{};
};

/// Self-describing JSON: schema tag, run identity, phases, sample grid,
/// every non-router series (kind "counter" = per-window deltas, "gauge"
/// = sampled values), and per-router heatmaps as per-window WxH frames.
std::string format_timeline_json(const telemetry::Timeline& tl,
                                 const TimelineMeta& meta);

/// Flat CSV: one row per window (window, cycle_end, window_cycles, then
/// every series in name order; counters as per-window deltas).
std::string format_timeline_csv(const telemetry::Timeline& tl);

/// Chrome/Perfetto trace_event JSON (the {"traceEvents": [...]} form),
/// loadable in chrome://tracing and ui.perfetto.dev:
///  * pid 1 "sim": simulated cycles rendered 1:1 as microseconds —
///    warmup/measure/drain phase spans plus one counter track per
///    series (windowed rates for counters, raw values for gauges;
///    per-router tracks only on fabrics of <= 64 routers);
///  * pid 2 "host": the wall-clock ProfileScope spans.
std::string format_chrome_trace(const telemetry::Timeline& tl,
                                const TimelineMeta& meta,
                                const std::vector<telemetry::HostSpan>& spans);

/// As above, additionally rendering a flit trace's worst `flow_packets`
/// packet journeys into pid 1: one thread track per visited router
/// (router residency as "X" slices) connected by Perfetto flow arrows
/// ("s"/"t"/"f" events keyed by flit uid), so the highest-latency
/// packets can be followed hop-by-hop across the fabric in
/// ui.perfetto.dev.  An empty/disabled trace degrades to the plain form.
std::string format_chrome_trace(const telemetry::Timeline& tl,
                                const TimelineMeta& meta,
                                const std::vector<telemetry::HostSpan>& spans,
                                const telemetry::FlitTrace& flits,
                                int flow_packets);

/// Scalar roll-up for bench JSONs — every key starts with "timeline_"
/// (bench_trend.py trends them by that prefix): window count, peak and
/// mean delivered flits/cycle, peak windowed deflection rate, peak event
/// queue depth, and the overall commit-dedup rate.
std::map<std::string, double> timeline_summary(const telemetry::Timeline& tl);

}  // namespace medea::workload
