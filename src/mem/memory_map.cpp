#include "mem/memory_map.h"

#include <bit>

namespace medea::mem {

std::uint32_t double_lo(double d) {
  const auto bits = std::bit_cast<std::uint64_t>(d);
  return static_cast<std::uint32_t>(bits & 0xffff'ffffull);
}

std::uint32_t double_hi(double d) {
  const auto bits = std::bit_cast<std::uint64_t>(d);
  return static_cast<std::uint32_t>(bits >> 32);
}

double make_double(std::uint32_t lo, std::uint32_t hi) {
  const std::uint64_t bits =
      (static_cast<std::uint64_t>(hi) << 32) | static_cast<std::uint64_t>(lo);
  return std::bit_cast<double>(bits);
}

}  // namespace medea::mem
