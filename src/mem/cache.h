#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mem/memory_map.h"
#include "sim/stats.h"

/// \file cache.h
/// L1 cache model for MEDEA processing elements and the MPMMU.
///
/// The paper sweeps cache size between 2 kB and 64 kB (powers of two) and
/// compares Write-Back against Write-Through policies on 16-byte lines
/// (a miss triggers a block read of four 32-bit words, §II-B).
///
/// This model is functional + structural: it holds real data, real tags
/// and real dirty bits, and reports exactly which memory transactions the
/// surrounding hardware must perform (fill, writeback, write-through).
/// Timing is the caller's job — the pif2NoC bridge turns the reported
/// transactions into NoC traffic with real latency.
///
/// Policies:
///  * Write-Back: write-allocate; dirty victim lines produce a block
///    writeback on eviction; explicit flush-line supports the paper's
///    software coherence discipline (flush before unlock).
///  * Write-Through: no-allocate on write miss; every store also goes to
///    memory; lines are never dirty.
///
/// Explicit line operations (Xtensa-style):
///  * flush_line  (DHWB):  write back if dirty, keep valid.
///  * invalidate_line (DII): drop the line without writeback.

namespace medea::mem {

enum class WritePolicy : std::uint8_t { kWriteBack, kWriteThrough };

inline const char* to_string(WritePolicy p) {
  return p == WritePolicy::kWriteBack ? "WB" : "WT";
}

struct CacheConfig {
  std::uint32_t size_bytes = 16 * 1024;
  std::uint32_t line_bytes = kLineBytes;  ///< fixed at 16 in this model
  std::uint32_t ways = 2;                 ///< Xtensa-typical 2-way LRU
  WritePolicy policy = WritePolicy::kWriteBack;

  std::uint32_t num_lines() const { return size_bytes / line_bytes; }
  std::uint32_t num_sets() const { return num_lines() / ways; }
};

using LineData = std::array<std::uint32_t, kWordsPerLine>;

/// Memory transaction the cache asks its owner to perform.
struct Writeback {
  Addr line_addr = 0;
  LineData data{};
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  const CacheConfig& config() const { return cfg_; }

  // ------------------------------------------------------------------
  // Lookups (no state change)
  // ------------------------------------------------------------------
  bool contains(Addr addr) const { return find(addr) != nullptr; }
  bool line_dirty(Addr addr) const {
    const Line* l = find(addr);
    return l != nullptr && l->dirty;
  }

  // ------------------------------------------------------------------
  // Accesses
  // ------------------------------------------------------------------

  /// Read one word.  Returns the value on hit; nullopt on miss (the owner
  /// must obtain the line and call fill_line, then retry or use the fill
  /// data directly).
  std::optional<std::uint32_t> read_word(Addr addr);

  /// Write one word.
  ///  * WB policy: on hit, updates and dirties the line, returns true.
  ///    On miss returns false — the owner must fill (write-allocate) and
  ///    retry.
  ///  * WT policy: updates the line only on hit (no-allocate); always
  ///    returns true because the store itself always proceeds to memory
  ///    (the owner must independently issue the write-through).
  bool write_word(Addr addr, std::uint32_t value);

  /// Install a line fetched from memory.  Returns the victim writeback
  /// if a dirty line had to be evicted (WB only).
  std::optional<Writeback> fill_line(Addr line_addr, const LineData& data);

  /// Stat-free accessors used by the owner immediately after fill_line to
  /// complete the access that missed (the miss was already counted; the
  /// retry must not be).  The line must be present.
  std::uint32_t peek_word(Addr addr);
  void poke_word(Addr addr, std::uint32_t value, bool mark_dirty);

  /// DHWB: write back the line if present and dirty (cleared to clean).
  std::optional<Writeback> flush_line(Addr addr);

  /// DII: drop the line, discarding any dirty data (the paper's consumer-
  /// side invalidate; software guarantees no dirty data is lost).
  void invalidate_line(Addr addr);

  /// Invalidate everything (reset / full DII sweep).
  void invalidate_all();

  /// Write back every dirty line (cleared to clean).  Used by the MPMMU
  /// backdoor when tests/verifiers want a coherent view of the backing
  /// store, and by full-flush software sequences.
  std::vector<Writeback> flush_all();

  sim::StatSet& stats() { return stats_; }
  const sim::StatSet& stats() const { return stats_; }

  /// Hit ratio over all read+write accesses so far (for reports).
  double hit_rate() const;

 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    Addr tag = 0;  // full line address used as tag (simple and exact)
    std::uint64_t lru = 0;
    LineData data{};
  };

  std::uint32_t set_index(Addr addr) const {
    return (line_align(addr) / cfg_.line_bytes) % cfg_.num_sets();
  }

  const Line* find(Addr addr) const;
  Line* find(Addr addr);
  Line& victim(Addr addr);

  CacheConfig cfg_;
  std::vector<Line> lines_;  // sets * ways, row-major by set
  std::uint64_t access_clock_ = 0;
  sim::StatSet stats_;
  // Handles into stats_ resolved once; every access bumps one of these,
  // so the per-access string-keyed lookup matters (it showed up in
  // bench_sim_speed profiles).
  sim::Stat& st_read_hits_ = stats_.counter("cache.read_hits");
  sim::Stat& st_read_misses_ = stats_.counter("cache.read_misses");
  sim::Stat& st_write_hits_ = stats_.counter("cache.write_hits");
  sim::Stat& st_write_misses_ = stats_.counter("cache.write_misses");
  sim::Stat& st_writebacks_ = stats_.counter("cache.writebacks");
  sim::Stat& st_evictions_ = stats_.counter("cache.evictions");
  sim::Stat& st_fills_ = stats_.counter("cache.fills");
};

}  // namespace medea::mem
