#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "mem/memory_map.h"

/// \file backing_store.h
/// Functional model of the external DDR storage array.
///
/// Pure state, no timing: the MPMMU model adds DDR service latency.  The
/// store is sparse (page-granular) so a full 32-bit address space costs
/// only what is actually touched.  Untouched memory reads as zero, which
/// tests rely on for deterministic cold-start contents.

namespace medea::mem {

class BackingStore {
 public:
  static constexpr std::uint32_t kPageWords = 1024;  // 4 KiB pages

  std::uint32_t read_word(Addr addr) const {
    const Addr w = addr / kWordBytes;
    auto it = pages_.find(w / kPageWords);
    if (it == pages_.end()) return 0;
    return it->second[w % kPageWords];
  }

  void write_word(Addr addr, std::uint32_t value) {
    const Addr w = addr / kWordBytes;
    page(w / kPageWords)[w % kPageWords] = value;
  }

  /// Whole-line helpers (16 bytes = 4 words), used by block transfers.
  std::array<std::uint32_t, kWordsPerLine> read_line(Addr addr) const {
    const Addr base = line_align(addr);
    std::array<std::uint32_t, kWordsPerLine> line{};
    for (int i = 0; i < kWordsPerLine; ++i) {
      line[static_cast<std::size_t>(i)] =
          read_word(base + static_cast<Addr>(i) * kWordBytes);
    }
    return line;
  }

  void write_line(Addr addr,
                  const std::array<std::uint32_t, kWordsPerLine>& line) {
    const Addr base = line_align(addr);
    for (int i = 0; i < kWordsPerLine; ++i) {
      write_word(base + static_cast<Addr>(i) * kWordBytes,
                 line[static_cast<std::size_t>(i)]);
    }
  }

  /// Convenience accessors used by workload setup/checking code (these
  /// are "backdoor" accesses with no timing and no cache interaction).
  double read_double(Addr addr) const {
    return make_double(read_word(addr), read_word(addr + kWordBytes));
  }
  void write_double(Addr addr, double d) {
    write_word(addr, double_lo(d));
    write_word(addr + kWordBytes, double_hi(d));
  }

  std::size_t touched_pages() const { return pages_.size(); }

 private:
  using Page = std::array<std::uint32_t, kPageWords>;

  Page& page(Addr page_index) {
    auto it = pages_.find(page_index);
    if (it == pages_.end()) it = pages_.emplace(page_index, Page{}).first;
    return it->second;
  }

  std::unordered_map<Addr, Page> pages_;
};

}  // namespace medea::mem
