#pragma once

#include <cstdint>

/// \file ddr.h
/// Timing parameters of the external DDR memory behind the MPMMU.
///
/// The paper attaches the MPMMU to a DDR controller over a PIF bus and
/// keeps a local cache inside the MPMMU so that "the latency of read
/// operations strongly depends on the availability of the given word
/// inside the cache".  We model the controller as a fixed-latency,
/// burst-capable device: an access pays `access_latency` cycles for the
/// first word and `per_word_latency` for each additional word of a burst.

namespace medea::mem {

struct DdrConfig {
  std::uint32_t access_latency = 48;   ///< cycles to first word
  std::uint32_t per_word_latency = 4;  ///< additional cycles per burst word

  std::uint32_t burst_cycles(int words) const {
    const auto extra = static_cast<std::uint32_t>(words > 0 ? words - 1 : 0);
    return access_latency + per_word_latency * extra;
  }
};

}  // namespace medea::mem
