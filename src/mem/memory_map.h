#pragma once

#include <cassert>
#include <cstdint>

/// \file memory_map.h
/// Global physical address map of a MEDEA system (paper §II-C, §II-E).
///
/// The global shared memory behind the MPMMU is divided into two logic
/// segments: a private area (one segment per core, cacheable without any
/// coherence actions because only its owner touches it) and one shared
/// area (cacheable only under the software-managed flush/invalidate
/// discipline, or accessed uncached).
///
/// Layout used by this implementation (word-aligned, 32-bit addresses):
///
///   [0x0000'0000 ..)                      private segment of core 0
///   [k * private_size ..)                 private segment of core k
///   [kSharedBase .. kSharedBase + size)   shared segment
///
/// Addresses are byte addresses; the memory word is 32 bits and the cache
/// line is 16 bytes (4 words), matching the paper's configuration.

namespace medea::mem {

using Addr = std::uint32_t;

inline constexpr Addr kWordBytes = 4;
inline constexpr Addr kLineBytes = 16;
inline constexpr int kWordsPerLine = kLineBytes / kWordBytes;

inline constexpr Addr word_align(Addr a) { return a & ~(kWordBytes - 1); }
inline constexpr Addr line_align(Addr a) { return a & ~(kLineBytes - 1); }
inline constexpr int word_in_line(Addr a) {
  return static_cast<int>((a & (kLineBytes - 1)) / kWordBytes);
}

struct MemoryMapConfig {
  Addr private_segment_size = 1u << 20;  ///< 1 MiB per core
  Addr shared_base = 0x8000'0000u;
  Addr shared_size = 16u << 20;  ///< 16 MiB shared segment
  /// Core-local data RAM (Xtensa-style local memory; paper Fig. 2-b puts
  /// the message-passing packet landing segments here).  Each core sees
  /// its own physical RAM at the same address window; accesses are
  /// single-cycle and never touch the cache or the NoC.
  Addr scratchpad_base = 0xF000'0000u;
  Addr scratchpad_size = 128u << 10;  ///< 128 kB local data RAM
  int num_cores = 1;
};

/// Address-space layout helper shared by cores, bridges and the MPMMU.
class MemoryMap {
 public:
  explicit MemoryMap(const MemoryMapConfig& cfg) : cfg_(cfg) {
    assert(cfg.num_cores >= 1);
    assert(static_cast<std::uint64_t>(cfg.num_cores) *
               cfg.private_segment_size <=
           cfg.shared_base);
  }

  const MemoryMapConfig& config() const { return cfg_; }

  Addr private_base(int core) const {
    assert(core >= 0 && core < cfg_.num_cores);
    return static_cast<Addr>(core) * cfg_.private_segment_size;
  }
  Addr private_size() const { return cfg_.private_segment_size; }

  Addr shared_base() const { return cfg_.shared_base; }
  Addr shared_size() const { return cfg_.shared_size; }

  bool is_private(Addr a) const {
    return a < static_cast<std::uint64_t>(cfg_.num_cores) *
                   cfg_.private_segment_size;
  }
  bool is_private_of(Addr a, int core) const {
    return a >= private_base(core) &&
           a < private_base(core) + cfg_.private_segment_size;
  }
  bool is_shared(Addr a) const {
    return a >= cfg_.shared_base && a - cfg_.shared_base < cfg_.shared_size;
  }
  /// Core-local data RAM window (same range on every core).
  bool is_scratchpad(Addr a) const {
    return a >= cfg_.scratchpad_base &&
           a - cfg_.scratchpad_base < cfg_.scratchpad_size;
  }
  Addr scratchpad_base() const { return cfg_.scratchpad_base; }
  Addr scratchpad_size() const { return cfg_.scratchpad_size; }
  bool is_mapped(Addr a) const {
    return is_private(a) || is_shared(a) || is_scratchpad(a);
  }

  /// Owning core of a private address (-1 for shared/unmapped).
  int private_owner(Addr a) const {
    if (!is_private(a)) return -1;
    return static_cast<int>(a / cfg_.private_segment_size);
  }

 private:
  MemoryMapConfig cfg_;
};

/// 64-bit IEEE double <-> two 32-bit memory words (little-endian order:
/// low word at the lower address), the layout the 32-bit Xtensa ABI uses.
std::uint32_t double_lo(double d);
std::uint32_t double_hi(double d);
double make_double(std::uint32_t lo, std::uint32_t hi);

}  // namespace medea::mem
