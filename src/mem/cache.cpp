#include "mem/cache.h"

#include <cassert>

namespace medea::mem {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  assert(cfg_.line_bytes == kLineBytes && "model is fixed at 16-byte lines");
  assert(cfg_.size_bytes % cfg_.line_bytes == 0);
  assert(cfg_.ways >= 1 && cfg_.num_lines() % cfg_.ways == 0);
  assert((cfg_.num_sets() & (cfg_.num_sets() - 1)) == 0 &&
         "number of sets must be a power of two");
  lines_.resize(cfg_.num_lines());
}

const Cache::Line* Cache::find(Addr addr) const {
  const Addr tag = line_align(addr);
  const std::uint32_t set = set_index(addr);
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    const Line& l = lines_[set * cfg_.ways + w];
    if (l.valid && l.tag == tag) return &l;
  }
  return nullptr;
}

Cache::Line* Cache::find(Addr addr) {
  return const_cast<Line*>(static_cast<const Cache*>(this)->find(addr));
}

Cache::Line& Cache::victim(Addr addr) {
  const std::uint32_t set = set_index(addr);
  Line* best = &lines_[set * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Line& l = lines_[set * cfg_.ways + w];
    if (!l.valid) return l;  // prefer empty ways
    if (l.lru < best->lru) best = &l;
  }
  return *best;
}

std::optional<std::uint32_t> Cache::read_word(Addr addr) {
  ++access_clock_;
  if (Line* l = find(addr)) {
    l->lru = access_clock_;
    ++st_read_hits_;
    return l->data[static_cast<std::size_t>(word_in_line(addr))];
  }
  ++st_read_misses_;
  return std::nullopt;
}

bool Cache::write_word(Addr addr, std::uint32_t value) {
  ++access_clock_;
  Line* l = find(addr);
  if (cfg_.policy == WritePolicy::kWriteBack) {
    if (l == nullptr) {
      ++st_write_misses_;
      return false;  // write-allocate: owner fills then retries
    }
    l->lru = access_clock_;
    l->data[static_cast<std::size_t>(word_in_line(addr))] = value;
    l->dirty = true;
    ++st_write_hits_;
    return true;
  }
  // Write-through, no-allocate: update on hit, never dirty.
  if (l != nullptr) {
    l->lru = access_clock_;
    l->data[static_cast<std::size_t>(word_in_line(addr))] = value;
    ++st_write_hits_;
  } else {
    ++st_write_misses_;
  }
  return true;
}

std::optional<Writeback> Cache::fill_line(Addr line_addr,
                                          const LineData& data) {
  line_addr = line_align(line_addr);
  assert(find(line_addr) == nullptr && "fill of a line already present");
  ++access_clock_;
  Line& v = victim(line_addr);
  std::optional<Writeback> wb;
  if (v.valid && v.dirty) {
    wb = Writeback{v.tag, v.data};
    ++st_writebacks_;
  }
  if (v.valid) ++st_evictions_;
  v.valid = true;
  v.dirty = false;
  v.tag = line_addr;
  v.lru = access_clock_;
  v.data = data;
  ++st_fills_;
  return wb;
}

std::uint32_t Cache::peek_word(Addr addr) {
  Line* l = find(addr);
  assert(l != nullptr && "peek_word requires a resident line");
  l->lru = ++access_clock_;
  return l->data[static_cast<std::size_t>(word_in_line(addr))];
}

void Cache::poke_word(Addr addr, std::uint32_t value, bool mark_dirty) {
  Line* l = find(addr);
  assert(l != nullptr && "poke_word requires a resident line");
  l->lru = ++access_clock_;
  l->data[static_cast<std::size_t>(word_in_line(addr))] = value;
  if (mark_dirty) l->dirty = true;
}

std::optional<Writeback> Cache::flush_line(Addr addr) {
  Line* l = find(addr);
  if (l == nullptr || !l->dirty) return std::nullopt;
  l->dirty = false;
  stats_.inc("cache.flush_writebacks");
  return Writeback{l->tag, l->data};
}

void Cache::invalidate_line(Addr addr) {
  if (Line* l = find(addr)) {
    l->valid = false;
    l->dirty = false;
    stats_.inc("cache.invalidates");
  }
}

std::vector<Writeback> Cache::flush_all() {
  std::vector<Writeback> out;
  for (Line& l : lines_) {
    if (l.valid && l.dirty) {
      out.push_back(Writeback{l.tag, l.data});
      l.dirty = false;
    }
  }
  return out;
}

void Cache::invalidate_all() {
  for (Line& l : lines_) {
    l.valid = false;
    l.dirty = false;
  }
}

double Cache::hit_rate() const {
  const auto hits =
      stats_.get("cache.read_hits") + stats_.get("cache.write_hits");
  const auto misses =
      stats_.get("cache.read_misses") + stats_.get("cache.write_misses");
  const auto total = hits + misses;
  if (total == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(total);
}

}  // namespace medea::mem
