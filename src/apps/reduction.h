#pragma once

#include <cstdint>
#include <vector>

#include "core/system.h"
#include "sim/types.h"

/// \file reduction.h
/// Second workload: a parallel dot product with a global (all-reduce)
/// sum — the simplest member of the "standard parallel benchmarks" the
/// paper lists as future work, and a pure synchronization stress once the
/// local compute shrinks.
///
/// Each core owns a contiguous chunk of two vectors in its private
/// segment, computes the local partial dot product with real FP timing
/// (19-cycle adds, 26-cycle multiplies), and then combines partials:
///
///  * kMessagePassing — workers send partials to rank 0 over the TIE
///    port; rank 0 accumulates in rank order and broadcasts the result
///    (eMPI gather+bcast).
///  * kSharedMemory   — workers add their partial into a lock-protected
///    accumulator behind the MPMMU and synchronize with the semaphore
///    barrier; everyone then reads the result back.
///
/// Rank-0 accumulation is deterministic, so the MP variant matches the
/// host reference bit-exactly.  The SM variant's addition order follows
/// lock-grant order; the result is compared against the reference with a
/// tiny tolerance instead.

namespace medea::apps {

enum class ReductionVariant : std::uint8_t { kMessagePassing, kSharedMemory };

const char* to_string(ReductionVariant v);

struct ReductionParams {
  int elements = 1024;  ///< total vector length (doubles)
  int repeats = 1;      ///< how many reduce rounds to run (timed)
  ReductionVariant variant = ReductionVariant::kMessagePassing;
};

struct ReductionResult {
  double value = 0.0;       ///< dot product computed by the machine
  double reference = 0.0;   ///< host-computed reference
  double abs_error = 0.0;
  sim::Cycle total_cycles = 0;
  double cycles_per_round = 0.0;
  int cores = 0;
};

/// Deterministic test vectors (element i of a and b).
double reduction_vec_a(int i);
double reduction_vec_b(int i);

/// Host reference in rank-major order for `cores` cores.
double reduction_reference(int elements, int cores);

ReductionResult run_reduction(core::MedeaSystem& sys,
                              const ReductionParams& p);

}  // namespace medea::apps
