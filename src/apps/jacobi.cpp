#include "apps/jacobi.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "empi/empi.h"

namespace medea::apps {

using mem::Addr;
using pe::ProcessingElement;

const char* to_string(JacobiVariant v) {
  switch (v) {
    case JacobiVariant::kHybridMp: return "hybrid-mp";
    case JacobiVariant::kHybridSyncOnly: return "hybrid-sync-only";
    case JacobiVariant::kPureSharedMemory: return "pure-shared-memory";
  }
  return "?";
}

std::vector<RowPartition> partition_rows(int interior_rows, int cores) {
  assert(interior_rows >= 0 && cores >= 1);
  std::vector<RowPartition> out(static_cast<std::size_t>(cores));
  const int base = interior_rows / cores;
  const int rem = interior_rows % cores;
  int row = 0;
  for (int k = 0; k < cores; ++k) {
    const int take = base + (k < rem ? 1 : 0);
    out[static_cast<std::size_t>(k)] = RowPartition{row, row + take};
    row += take;
  }
  assert(row == interior_rows);
  return out;
}

double jacobi_initial(int i, int j, int n) {
  if (i == 0 || j == 0 || i == n - 1 || j == n - 1) {
    return std::sin(0.7 * i) + std::cos(1.3 * j) + 2.0;
  }
  return 0.0;
}

std::vector<double> jacobi_reference(int n, int iterations) {
  std::vector<double> cur(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      cur[static_cast<std::size_t>(i) * n + j] = jacobi_initial(i, j, n);
    }
  }
  std::vector<double> nxt = cur;
  for (int it = 0; it < iterations; ++it) {
    for (int i = 1; i < n - 1; ++i) {
      for (int j = 1; j < n - 1; ++j) {
        const auto at = [&](int r, int c) {
          return cur[static_cast<std::size_t>(r) * n + c];
        };
        nxt[static_cast<std::size_t>(i) * n + j] =
            0.25 * (at(i - 1, j) + at(i + 1, j) + at(i, j - 1) + at(i, j + 1));
      }
    }
    std::swap(cur, nxt);
  }
  return cur;
}

namespace {

/// Everything the per-core coroutines share.  Held by shared_ptr so the
/// coroutine frames keep it alive for the whole run.
struct Ctx {
  JacobiParams p;
  core::MedeaSystem* sys = nullptr;
  int n = 0;
  int cores = 0;
  int total_iters = 0;
  std::vector<RowPartition> part;   // interior-row ranges, per rank
  std::vector<int> up_partner;      // rank owning the rows above (-1)
  std::vector<int> down_partner;    // rank owning the rows below (-1)
  std::vector<int> chain_pos;       // position among active ranks (-1)
  std::vector<int> members;         // node ids (all cores) for barriers

  // Variant A (hybrid MP): per-rank private double-buffered block of the
  // OWNED rows; halo rows live in the core-local scratchpad where the TIE
  // receive hardware lands packets (paper Fig. 2-b).
  std::uint32_t row_bytes = 0;      // n doubles

  // Variants B/C: ping-pong grids in the shared segment.
  Addr sh[2] = {0, 0};
  Addr barrier_cnt = 0;
  Addr barrier_sense = 0;

  sim::Cycle t_start = 0;
  sim::Cycle t_end = 0;

  int first_global_row(int rank) const {
    return 1 + part[static_cast<std::size_t>(rank)].start;
  }
  // inclusive: 1+end-1
  int last_global_row(int rank) const {
    return part[static_cast<std::size_t>(rank)].end;
  }

  /// Variant A: address of owned (local_row, col) in buffer `buf` of
  /// `rank`; local_row in [0, rows).
  Addr priv(int rank, int buf, int local_row, int col) const {
    const int rows = part[static_cast<std::size_t>(rank)].rows();
    const std::uint32_t buf_bytes =
        static_cast<std::uint32_t>(rows) * row_bytes;
    return sys->private_addr(
        rank, static_cast<std::uint32_t>(buf) * buf_bytes +
                  static_cast<std::uint32_t>(local_row) * row_bytes +
                  static_cast<std::uint32_t>(col) * 8u);
  }

  /// Variant A: scratchpad address of the halo rows (up at offset 0,
  /// down right after), col-indexed like a grid row.
  Addr halo(int which_down, int col) const {
    return sys->memory_map().scratchpad_base() +
           static_cast<Addr>(which_down) * row_bytes +
           static_cast<Addr>(col) * 8u;
  }

  /// Variants B/C: address of (row, col) in shared grid `buf`.
  Addr shared_at(int buf, int row, int col) const {
    return sh[buf] + static_cast<Addr>(row) * row_bytes +
           static_cast<Addr>(col) * 8u;
  }
};

std::uint32_t lo32(std::uint64_t v) { return static_cast<std::uint32_t>(v); }
std::uint32_t hi32(std::uint64_t v) {
  return static_cast<std::uint32_t>(v >> 32);
}

// ---------------------------------------------------------------------
// Variant A: hybrid, full message passing
// ---------------------------------------------------------------------

/// Two-phase pairwise halo exchange (even pairs, then odd pairs), which
/// keeps all pairs concurrent instead of rippling serially down the chain.
/// Boundary rows stream straight out of the L1 through the TIE port (the
/// paper's best case) and land in the receiver's scratchpad halo slots by
/// sequence-number offset, with no software copy loop.
sim::Task<> halo_exchange_mp(std::shared_ptr<Ctx> cx, ProcessingElement& pe,
                             int cur) {
  const int rank = pe.rank();
  const int rows = cx->part[static_cast<std::size_t>(rank)].rows();
  const int pos = cx->chain_pos[static_cast<std::size_t>(rank)];
  const int row_words = 2 * cx->n;  // doubles -> 32-bit words
  for (int phase = 0; phase < 2; ++phase) {
    const int down = cx->down_partner[static_cast<std::size_t>(rank)];
    const int up = cx->up_partner[static_cast<std::size_t>(rank)];
    if (down >= 0 && pos % 2 == phase) {
      // I am the lower-position member of this pair: send first.
      const int peer = cx->sys->node_of_rank(down);
      co_await pe.mp_send_block(peer, cx->priv(rank, cur, rows - 1, 0),
                                row_words);
      co_await pe.mp_recv_block(peer, cx->halo(1, 0), row_words);
    } else if (up >= 0 &&
               cx->chain_pos[static_cast<std::size_t>(up)] % 2 == phase) {
      const int peer = cx->sys->node_of_rank(up);
      co_await pe.mp_recv_block(peer, cx->halo(0, 0), row_words);
      co_await pe.mp_send_block(peer, cx->priv(rank, cur, 0, 0), row_words);
    }
  }
}

/// Five-point stencil over the owned rows: buf `cur` -> buf `1-cur`.
/// Up/down neighbours of the first/last owned row come from the
/// scratchpad halo slots.
sim::Task<> compute_block_private(std::shared_ptr<Ctx> cx,
                                  ProcessingElement& pe, int cur) {
  const int rank = pe.rank();
  const int n = cx->n;
  const int rows = cx->part[static_cast<std::size_t>(rank)].rows();
  for (int r = 0; r < rows; ++r) {
    const Addr up_addr0 =
        r == 0 ? cx->halo(0, 0) : cx->priv(rank, cur, r - 1, 0);
    const Addr dn_addr0 =
        r == rows - 1 ? cx->halo(1, 0) : cx->priv(rank, cur, r + 1, 0);
    for (int c = 1; c <= n - 2; ++c) {
      auto up = co_await pe.load_double(up_addr0 + static_cast<Addr>(c) * 8u);
      auto dn = co_await pe.load_double(dn_addr0 + static_cast<Addr>(c) * 8u);
      auto lf = co_await pe.load_double(cx->priv(rank, cur, r, c - 1));
      auto rt = co_await pe.load_double(cx->priv(rank, cur, r, c + 1));
      co_await pe.fp_block(3, 1);
      co_await pe.compute(kLoopOverheadCycles);
      const double v =
          0.25 * (mem::make_double(lo32(up.value), hi32(up.value)) +
                  mem::make_double(lo32(dn.value), hi32(dn.value)) +
                  mem::make_double(lo32(lf.value), hi32(lf.value)) +
                  mem::make_double(lo32(rt.value), hi32(rt.value)));
      co_await pe.store_double(cx->priv(rank, 1 - cur, r, c), v);
    }
  }
}

sim::Task<> mp_program(std::shared_ptr<Ctx> cx, ProcessingElement& pe) {
  const int rank = pe.rank();
  const int rows = cx->part[static_cast<std::size_t>(rank)].rows();
  int cur = 0;
  for (int it = 0; it < cx->total_iters; ++it) {
    if (it == cx->p.warmup_iterations && rank == 0) cx->t_start = pe.now();
    if (rows > 0) {
      co_await halo_exchange_mp(cx, pe, cur);
      co_await compute_block_private(cx, pe, cur);
    }
    cur = 1 - cur;
    co_await empi::barrier(pe, cx->members);
    if (it == cx->total_iters - 1 && rank == 0) cx->t_end = pe.now();
  }
}

// ---------------------------------------------------------------------
// Variants B/C: data through shared memory
// ---------------------------------------------------------------------

/// Semaphore-style barrier in shared memory — the synchronization the
/// paper's pure-shared-memory baseline uses ("synchronization using
/// semaphores" backed by the MPMMU lock/unlock protocol).
///
/// Arrival increments a lock-protected counter (§II-C critical-section
/// discipline).  Waiters then spin on a volatile release flag with the
/// §II-E consumer recipe: DII-invalidate the line, then reload it — every
/// poll is a fresh block-read transaction at the MPMMU.  With P-1 cores
/// polling, the memory node is saturated by synchronization traffic;
/// this is precisely the overhead the paper's §III analysis attributes
/// the bulk of the hybrid speedup to.
sim::Task<> sm_barrier(std::shared_ptr<Ctx> cx, ProcessingElement& pe,
                       int target_sense) {
  co_await pe.lock(cx->barrier_cnt);
  auto r = co_await pe.load_uncached(cx->barrier_cnt);
  const auto count = static_cast<std::uint32_t>(r.value) + 1;
  if (count == static_cast<std::uint32_t>(cx->cores)) {
    co_await pe.store_uncached(cx->barrier_cnt, 0);
    co_await pe.store_uncached(cx->barrier_sense,
                               static_cast<std::uint32_t>(target_sense));
    co_await pe.unlock(cx->barrier_cnt);
  } else {
    co_await pe.store_uncached(cx->barrier_cnt, count);
    co_await pe.unlock(cx->barrier_cnt);
    for (;;) {
      co_await pe.invalidate_line(cx->barrier_sense);  // DII (§II-E)
      auto s = co_await pe.load(cx->barrier_sense);    // re-fetch the line
      if (static_cast<int>(s.value) == target_sense) break;
      co_await pe.compute(8);  // spin-loop bookkeeping
    }
  }
}

/// Invalidate (DII) every cache line of one shared-grid row.
sim::Task<> invalidate_row(std::shared_ptr<Ctx> cx, ProcessingElement& pe,
                           int buf, int row) {
  const Addr base = cx->shared_at(buf, row, 0);
  for (std::uint32_t off = 0; off < cx->row_bytes; off += mem::kLineBytes) {
    co_await pe.invalidate_line(base + off);
  }
}

/// Flush (DHWB) every cache line of one shared-grid row.
sim::Task<> flush_row(std::shared_ptr<Ctx> cx, ProcessingElement& pe, int buf,
                      int row) {
  const Addr base = cx->shared_at(buf, row, 0);
  for (std::uint32_t off = 0; off < cx->row_bytes; off += mem::kLineBytes) {
    co_await pe.flush_line(base + off);
  }
}

sim::Task<> compute_block_shared(std::shared_ptr<Ctx> cx,
                                 ProcessingElement& pe, int cur) {
  const int rank = pe.rank();
  const int n = cx->n;
  const int g0 = cx->first_global_row(rank);
  const int g1 = cx->last_global_row(rank);  // inclusive
  for (int g = g0; g <= g1; ++g) {
    for (int c = 1; c <= n - 2; ++c) {
      auto up = co_await pe.load_double(cx->shared_at(cur, g - 1, c));
      auto dn = co_await pe.load_double(cx->shared_at(cur, g + 1, c));
      auto lf = co_await pe.load_double(cx->shared_at(cur, g, c - 1));
      auto rt = co_await pe.load_double(cx->shared_at(cur, g, c + 1));
      co_await pe.fp_block(3, 1);
      co_await pe.compute(kLoopOverheadCycles);
      const double v =
          0.25 * (mem::make_double(lo32(up.value), hi32(up.value)) +
                  mem::make_double(lo32(dn.value), hi32(dn.value)) +
                  mem::make_double(lo32(lf.value), hi32(lf.value)) +
                  mem::make_double(lo32(rt.value), hi32(rt.value)));
      co_await pe.store_double(cx->shared_at(1 - cur, g, c), v);
    }
  }
}

sim::Task<> sm_program(std::shared_ptr<Ctx> cx, ProcessingElement& pe,
                       bool mp_sync) {
  const int rank = pe.rank();
  const int rows = cx->part[static_cast<std::size_t>(rank)].rows();
  const bool caches_shared = !pe.config().shared_uncached;
  const bool write_back =
      pe.config().cache.policy == mem::WritePolicy::kWriteBack;
  int sense = 0;
  for (int it = 0; it < cx->total_iters; ++it) {
    if (it == cx->p.warmup_iterations && rank == 0) cx->t_start = pe.now();
    const int cur = it % 2;
    if (rows > 0) {
      const int g0 = cx->first_global_row(rank);
      const int g1 = cx->last_global_row(rank);
      if (caches_shared) {
        // Consumer side of the §II-E discipline: invalidate stale halo
        // copies (skip static global-boundary rows — never rewritten).
        if (g0 - 1 >= 1) co_await invalidate_row(cx, pe, cur, g0 - 1);
        if (g1 + 1 <= cx->n - 2) co_await invalidate_row(cx, pe, cur, g1 + 1);
      }
      co_await compute_block_shared(cx, pe, cur);
      // Producer side: make my boundary rows visible in system memory.
      if (caches_shared && write_back) {
        co_await flush_row(cx, pe, 1 - cur, g0);
        if (g1 != g0) co_await flush_row(cx, pe, 1 - cur, g1);
      } else {
        // WT / uncached stores already travel to memory; wait for them.
        co_await pe.fence();
      }
    }
    if (mp_sync) {
      co_await empi::barrier(pe, cx->members);
    } else {
      sense = 1 - sense;
      co_await sm_barrier(cx, pe, sense);
    }
    if (it == cx->total_iters - 1 && rank == 0) cx->t_end = pe.now();
  }
}

}  // namespace

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

JacobiResult run_jacobi(core::MedeaSystem& sys, const JacobiParams& p) {
  if (p.n < 4) throw std::invalid_argument("Jacobi grid must be >= 4x4");
  if (p.timed_iterations < 1) {
    throw std::invalid_argument("need at least one timed iteration");
  }

  auto cx = std::make_shared<Ctx>();
  cx->p = p;
  cx->sys = &sys;
  cx->n = p.n;
  cx->cores = sys.num_cores();
  cx->total_iters = p.warmup_iterations + p.timed_iterations;
  cx->part = partition_rows(p.n - 2, cx->cores);
  cx->members = sys.core_nodes();
  cx->row_bytes = static_cast<std::uint32_t>(p.n) * 8u;

  // Neighbour chain over ranks that own at least one row.
  cx->up_partner.assign(static_cast<std::size_t>(cx->cores), -1);
  cx->down_partner.assign(static_cast<std::size_t>(cx->cores), -1);
  cx->chain_pos.assign(static_cast<std::size_t>(cx->cores), -1);
  {
    int prev = -1;
    int pos = 0;
    for (int k = 0; k < cx->cores; ++k) {
      if (cx->part[static_cast<std::size_t>(k)].rows() == 0) continue;
      cx->chain_pos[static_cast<std::size_t>(k)] = pos++;
      if (prev >= 0) {
        cx->down_partner[static_cast<std::size_t>(prev)] = k;
        cx->up_partner[static_cast<std::size_t>(k)] = prev;
      }
      prev = k;
    }
  }

  // ---- memory setup (zero-time backdoor) ----
  auto& store = sys.memory();
  const auto init_at = [&](Addr base, int i, int j) {
    store.write_double(base + static_cast<Addr>(i) * cx->row_bytes +
                           static_cast<Addr>(j) * 8u,
                       jacobi_initial(i, j, p.n));
  };

  if (p.variant == JacobiVariant::kHybridMp) {
    // Each rank's private double-buffered block of owned rows, plus the
    // scratchpad halo slots.  Static (global-boundary) halos are filled
    // once; exchanged halos start empty and are received before first use.
    for (int k = 0; k < cx->cores; ++k) {
      const auto& pt = cx->part[static_cast<std::size_t>(k)];
      if (pt.rows() == 0) continue;
      for (int buf = 0; buf < 2; ++buf) {
        for (int lr = 0; lr < pt.rows(); ++lr) {
          const int g = cx->first_global_row(k) + lr;
          for (int j = 0; j < p.n; ++j) {
            store.write_double(cx->priv(k, buf, lr, j),
                               jacobi_initial(g, j, p.n));
          }
        }
      }
      auto& pe = sys.core(k);
      if (cx->up_partner[static_cast<std::size_t>(k)] < 0) {
        const int g = cx->first_global_row(k) - 1;  // global boundary row
        for (int j = 0; j < p.n; ++j) {
          pe.scratch_write_double(cx->halo(0, j), jacobi_initial(g, j, p.n));
        }
      }
      if (cx->down_partner[static_cast<std::size_t>(k)] < 0) {
        const int g = cx->last_global_row(k) + 1;
        for (int j = 0; j < p.n; ++j) {
          pe.scratch_write_double(cx->halo(1, j), jacobi_initial(g, j, p.n));
        }
      }
    }
  } else {
    const auto grid_bytes = static_cast<std::uint32_t>(p.n) * cx->row_bytes;
    cx->sh[0] = sys.alloc_shared(grid_bytes, mem::kLineBytes);
    cx->sh[1] = sys.alloc_shared(grid_bytes, mem::kLineBytes);
    cx->barrier_cnt = sys.alloc_shared(mem::kLineBytes, mem::kLineBytes);
    cx->barrier_sense = cx->barrier_cnt + mem::kWordBytes;
    for (int buf = 0; buf < 2; ++buf) {
      for (int i = 0; i < p.n; ++i) {
        for (int j = 0; j < p.n; ++j) init_at(cx->sh[buf], i, j);
      }
    }
  }

  // ---- programs ----
  for (int k = 0; k < cx->cores; ++k) {
    auto& core_pe = sys.core(k);
    switch (p.variant) {
      case JacobiVariant::kHybridMp:
        sys.set_program(k, mp_program(cx, core_pe));
        break;
      case JacobiVariant::kHybridSyncOnly:
        sys.set_program(k, sm_program(cx, core_pe, /*mp_sync=*/true));
        break;
      case JacobiVariant::kPureSharedMemory:
        sys.set_program(k, sm_program(cx, core_pe, /*mp_sync=*/false));
        break;
    }
  }

  const sim::Cycle end_cycle = sys.run(2'000'000'000ull);

  // ---- result extraction ----
  JacobiResult res;
  res.cores = cx->cores;
  res.total_cycles = end_cycle;
  res.timed_cycles = cx->t_end - cx->t_start;
  res.cycles_per_iteration =
      static_cast<double>(res.timed_cycles) / p.timed_iterations;

  sys.flush_all_caches_backdoor();
  std::vector<double> grid(static_cast<std::size_t>(p.n) * p.n);
  for (int i = 0; i < p.n; ++i) {
    for (int j = 0; j < p.n; ++j) {
      grid[static_cast<std::size_t>(i) * p.n + j] = jacobi_initial(i, j, p.n);
    }
  }
  const int final_buf = cx->total_iters % 2;
  if (p.variant == JacobiVariant::kHybridMp) {
    for (int k = 0; k < cx->cores; ++k) {
      const auto& pt = cx->part[static_cast<std::size_t>(k)];
      for (int lr = 0; lr < pt.rows(); ++lr) {
        const int g = cx->first_global_row(k) + lr;
        for (int j = 0; j < p.n; ++j) {
          grid[static_cast<std::size_t>(g) * p.n + j] =
              store.read_double(cx->priv(k, final_buf, lr, j));
        }
      }
    }
  } else {
    for (int i = 1; i < p.n - 1; ++i) {
      for (int j = 1; j < p.n - 1; ++j) {
        grid[static_cast<std::size_t>(i) * p.n + j] =
            store.read_double(cx->shared_at(final_buf, i, j));
      }
    }
  }

  for (double v : grid) res.checksum += v;

  if (p.verify) {
    const auto ref = jacobi_reference(p.n, cx->total_iters);
    double max_err = 0.0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      max_err = std::max(max_err, std::abs(ref[i] - grid[i]));
    }
    res.max_abs_error = max_err;
    res.verified = true;
  }
  return res;
}

}  // namespace medea::apps
