#include "apps/reduction.h"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "empi/empi.h"

namespace medea::apps {

using mem::Addr;
using pe::ProcessingElement;

const char* to_string(ReductionVariant v) {
  return v == ReductionVariant::kMessagePassing ? "message-passing"
                                                : "shared-memory";
}

double reduction_vec_a(int i) { return 0.5 + 0.001 * (i % 97); }
double reduction_vec_b(int i) { return 1.0 - 0.002 * (i % 89); }

namespace {

/// Chunk [start, end) of core `rank` (leading cores take the remainder).
struct Chunk {
  int start = 0;
  int end = 0;
};

Chunk chunk_of(int elements, int cores, int rank) {
  const int base = elements / cores;
  const int rem = elements % cores;
  const int start = rank * base + std::min(rank, rem);
  return Chunk{start, start + base + (rank < rem ? 1 : 0)};
}

struct Ctx {
  ReductionParams p;
  core::MedeaSystem* sys = nullptr;
  int cores = 0;
  std::vector<int> members;
  Addr acc_lock = 0;   // SM variant: lock word
  Addr acc_value = 0;  // SM variant: accumulator (2 words)
  std::vector<double> results;  // per-rank observed value (last round)
  sim::Cycle t_start = 0;
  sim::Cycle t_end = 0;

  Addr vec_a(int rank, int local_i) const {
    return sys->private_addr(rank, static_cast<std::uint32_t>(local_i) * 8u);
  }
  Addr vec_b(int rank, int local_i, int local_n) const {
    return sys->private_addr(
        rank, static_cast<std::uint32_t>(local_n + local_i) * 8u);
  }
};

/// Local partial dot product over the rank's chunk, with the §II-B FP
/// timing (one multiply + one add per element) plus loop bookkeeping.
sim::Task<double> local_dot(std::shared_ptr<Ctx> cx, ProcessingElement& pe) {
  const int rank = pe.rank();
  const Chunk ch = chunk_of(cx->p.elements, cx->cores, rank);
  const int local_n = ch.end - ch.start;
  double acc = 0.0;
  for (int i = 0; i < local_n; ++i) {
    auto a = co_await pe.load_double(cx->vec_a(rank, i));
    auto b = co_await pe.load_double(cx->vec_b(rank, i, local_n));
    co_await pe.fp_block(1, 1);  // multiply + accumulate
    co_await pe.compute(4);      // loop bookkeeping
    acc += mem::make_double(static_cast<std::uint32_t>(a.value),
                            static_cast<std::uint32_t>(a.value >> 32)) *
           mem::make_double(static_cast<std::uint32_t>(b.value),
                            static_cast<std::uint32_t>(b.value >> 32));
  }
  co_return acc;
}

sim::Task<> mp_program(std::shared_ptr<Ctx> cx, ProcessingElement& pe) {
  const int rank = pe.rank();
  const int root = cx->sys->node_of_rank(0);
  if (rank == 0) cx->t_start = pe.now();
  for (int round = 0; round < cx->p.repeats; ++round) {
    const double partial = co_await local_dot(cx, pe);
    double total = partial;
    if (rank == 0) {
      // Gather partials in rank order: deterministic FP accumulation.
      for (int r = 1; r < cx->cores; ++r) {
        auto vs = co_await empi::receive_doubles(
            pe, cx->sys->node_of_rank(r), 1);
        co_await pe.fp_add();
        total += vs[0];
      }
      // Broadcast the result.
      std::vector<double> msg(1, total);
      for (int r = 1; r < cx->cores; ++r) {
        co_await empi::send_doubles(pe, cx->sys->node_of_rank(r), msg);
      }
    } else {
      std::vector<double> msg(1, partial);
      co_await empi::send_doubles(pe, root, msg);
      auto vs = co_await empi::receive_doubles(pe, root, 1);
      total = vs[0];
    }
    cx->results[static_cast<std::size_t>(rank)] = total;
  }
  if (rank == 0) cx->t_end = pe.now();
}

sim::Task<> sm_program(std::shared_ptr<Ctx> cx, ProcessingElement& pe) {
  const int rank = pe.rank();
  if (rank == 0) cx->t_start = pe.now();
  for (int round = 0; round < cx->p.repeats; ++round) {
    const double partial = co_await local_dot(cx, pe);
    // Add the partial into the global accumulator under the MPMMU lock,
    // with the §II-E discipline: invalidate before reading (another core
    // wrote it last), flush after writing (make it visible), and only
    // then release the lock — flush-before-unlock, exactly as §II-C
    // prescribes.
    co_await pe.lock(cx->acc_lock);
    co_await pe.invalidate_line(cx->acc_value);
    auto cur = co_await pe.load_double(cx->acc_value);
    co_await pe.fp_add();
    const double sum = mem::make_double(static_cast<std::uint32_t>(cur.value),
                                        static_cast<std::uint32_t>(
                                            cur.value >> 32)) +
                       partial;
    co_await pe.store_double(cx->acc_value, sum);
    co_await pe.flush_line(cx->acc_value);
    co_await pe.unlock(cx->acc_lock);
    // Everyone meets, then reads the total back.
    co_await empi::barrier(pe, cx->members);
    co_await pe.invalidate_line(cx->acc_value);
    auto v = co_await pe.load_double(cx->acc_value);
    cx->results[static_cast<std::size_t>(rank)] =
        mem::make_double(static_cast<std::uint32_t>(v.value),
                         static_cast<std::uint32_t>(v.value >> 32));
    // Rank 0 resets the accumulator for the next round behind a barrier.
    co_await empi::barrier(pe, cx->members);
    if (rank == 0) {
      co_await pe.store_double(cx->acc_value, 0.0);
      co_await pe.flush_line(cx->acc_value);
      co_await pe.fence();
    }
    co_await empi::barrier(pe, cx->members);
  }
  if (rank == 0) cx->t_end = pe.now();
}

}  // namespace

double reduction_reference(int elements, int cores) {
  // Rank-major accumulation mirrors the MP variant's gather order.
  double total = 0.0;
  for (int r = 0; r < cores; ++r) {
    const Chunk ch = chunk_of(elements, cores, r);
    double partial = 0.0;
    for (int i = ch.start; i < ch.end; ++i) {
      partial += reduction_vec_a(i) * reduction_vec_b(i);
    }
    total += partial;
  }
  return total;
}

ReductionResult run_reduction(core::MedeaSystem& sys,
                              const ReductionParams& p) {
  if (p.elements < sys.num_cores()) {
    throw std::invalid_argument("reduction: fewer elements than cores");
  }
  auto cx = std::make_shared<Ctx>();
  cx->p = p;
  cx->sys = &sys;
  cx->cores = sys.num_cores();
  cx->members = sys.core_nodes();
  cx->results.assign(static_cast<std::size_t>(cx->cores), 0.0);

  // Vectors into private segments: [a words][b words] per rank.
  for (int r = 0; r < cx->cores; ++r) {
    const Chunk ch = chunk_of(p.elements, cx->cores, r);
    const int local_n = ch.end - ch.start;
    for (int i = 0; i < local_n; ++i) {
      sys.memory().write_double(cx->vec_a(r, i),
                                reduction_vec_a(ch.start + i));
      sys.memory().write_double(cx->vec_b(r, i, local_n),
                                reduction_vec_b(ch.start + i));
    }
  }
  if (p.variant == ReductionVariant::kSharedMemory) {
    cx->acc_lock = sys.alloc_shared(mem::kLineBytes, mem::kLineBytes);
    cx->acc_value = sys.alloc_shared(mem::kLineBytes, mem::kLineBytes);
  }

  for (int r = 0; r < cx->cores; ++r) {
    sys.set_program(r, p.variant == ReductionVariant::kMessagePassing
                           ? mp_program(cx, sys.core(r))
                           : sm_program(cx, sys.core(r)));
  }
  const sim::Cycle end = sys.run(2'000'000'000ull);

  ReductionResult res;
  res.cores = cx->cores;
  res.total_cycles = end;
  res.cycles_per_round =
      static_cast<double>(cx->t_end - cx->t_start) / p.repeats;
  res.value = cx->results[0];
  res.reference = reduction_reference(p.elements, cx->cores);
  res.abs_error = std::abs(res.value - res.reference);
  // Every rank must have observed the same total.
  for (double v : cx->results) {
    if (v != res.value) {
      throw std::runtime_error("reduction: ranks disagree on the total");
    }
  }
  return res;
}

}  // namespace medea::apps
