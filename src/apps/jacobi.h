#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/system.h"
#include "sim/types.h"

/// \file jacobi.h
/// The paper's benchmark: a parallel Jacobi iterative solver for 2-D
/// Laplace problems (§III), in the three programming-model variants the
/// evaluation compares:
///
///  * kHybridMp         — "Medea": halo exchange AND synchronization via
///                        eMPI message passing; each core's block lives in
///                        its private (cacheable) segment.
///  * kHybridSyncOnly   — data exchange through shared memory (with the
///                        §II-E flush/invalidate discipline), barriers via
///                        eMPI message passing.
///  * kPureSharedMemory — data through shared memory and a lock-based
///                        sense-reversing barrier in shared memory; no
///                        message passing at all.
///
/// The grid is n x n doubles with a fixed (Dirichlet) boundary; cores own
/// contiguous blocks of interior rows.  Because Jacobi reads only
/// previous-iteration values, every variant computes bit-identical
/// results, which the verification path exploits.
///
/// Cost model of the inner loop (per interior point), following §II-B:
///   4 double loads (N/S/W/E neighbours), 3 FP adds + 1 FP multiply
///   (19/26 cycles), 1 double store, plus kLoopOverheadCycles of integer
///   bookkeeping.

namespace medea::apps {

enum class JacobiVariant : std::uint8_t {
  kHybridMp,
  kHybridSyncOnly,
  kPureSharedMemory,
};

const char* to_string(JacobiVariant v);

/// Integer loop bookkeeping charged per grid point (index arithmetic,
/// branch, address generation on a simple in-order RISC core).
inline constexpr std::uint32_t kLoopOverheadCycles = 8;

struct JacobiParams {
  int n = 16;               ///< grid dimension (n x n doubles)
  int warmup_iterations = 1;   ///< cache warm-up, excluded from timing
  int timed_iterations = 1;
  JacobiVariant variant = JacobiVariant::kHybridMp;
  bool verify = false;      ///< compare against the sequential reference
};

struct JacobiResult {
  sim::Cycle total_cycles = 0;   ///< whole run, including warm-up
  sim::Cycle timed_cycles = 0;   ///< the timed iterations only
  double cycles_per_iteration = 0.0;
  int cores = 0;
  double checksum = 0.0;         ///< sum over the final grid
  double max_abs_error = 0.0;    ///< vs reference (0 unless verify)
  bool verified = false;
};

/// Row-block partition: core k owns interior rows [start, end).
struct RowPartition {
  int start = 0;
  int end = 0;
  int rows() const { return end - start; }
};

/// Split `interior_rows` across `cores` as evenly as possible (leading
/// cores take the remainder).  Cores may end up with zero rows when
/// cores > interior_rows; they still participate in barriers.
std::vector<RowPartition> partition_rows(int interior_rows, int cores);

/// Initial grid value (deterministic; non-trivial boundary, zero interior).
double jacobi_initial(int i, int j, int n);

/// Sequential reference: the grid after `iterations` Jacobi steps.
std::vector<double> jacobi_reference(int n, int iterations);

/// Run the parallel solver on an already-constructed system.  Installs
/// one program per core, runs to completion and extracts results.
JacobiResult run_jacobi(core::MedeaSystem& sys, const JacobiParams& p);

}  // namespace medea::apps
