#pragma once

#include <cstdint>

#include "core/system.h"
#include "sim/types.h"

/// \file alltoall.h
/// Third workload: a personalized all-to-all exchange (MPI_Alltoall) —
/// next member of the "standard parallel benchmarks" the paper lists as
/// future work, and the densest communication pattern a message-passing
/// fabric faces: every core sends a distinct payload to every other
/// core each round.
///
/// The exchange uses the classic ring schedule: in step s (1..P-1) rank
/// r sends its chunk for rank (r+s) mod P and receives the chunk from
/// rank (r-s) mod P, so each step is a node-disjoint permutation and
/// the NoC sees P simultaneous long-haul streams — deliberately
/// asymmetric, bursty traffic (unlike jacobi's nearest-neighbour halos)
/// that gives the trace toolkit's transforms something real to chew on.
///
/// Payload words are a deterministic function of (src, dst, index), so
/// every receiver verifies every word exactly; a round ends with an
/// eMPI barrier.

namespace medea::apps {

struct AlltoallParams {
  int words_per_pair = 8;  ///< 32-bit words each rank sends each peer
  int repeats = 1;         ///< exchange rounds (timed)
};

struct AlltoallResult {
  sim::Cycle total_cycles = 0;
  double cycles_per_round = 0.0;
  int cores = 0;
  bool verified_ok = true;  ///< every received word matched its reference
};

/// The word rank `src` sends to rank `dst` at index `i` (the reference
/// receivers verify against).
std::uint32_t alltoall_word(int src, int dst, int i);

AlltoallResult run_alltoall(core::MedeaSystem& sys, const AlltoallParams& p);

}  // namespace medea::apps
