#include "apps/alltoall.h"

#include <memory>
#include <stdexcept>
#include <vector>

#include "empi/empi.h"

namespace medea::apps {

using pe::ProcessingElement;

std::uint32_t alltoall_word(int src, int dst, int i) {
  // Cheap deterministic mix with all three inputs load-bearing, so a
  // swapped/stale chunk can never verify by accident.
  return static_cast<std::uint32_t>(src) * 0x9E3779B9u +
         static_cast<std::uint32_t>(dst) * 0x85EBCA6Bu +
         static_cast<std::uint32_t>(i) * 0xC2B2AE35u + 1u;
}

namespace {

struct Ctx {
  AlltoallParams p;
  core::MedeaSystem* sys = nullptr;
  int cores = 0;
  std::vector<int> members;
  bool verified_ok = true;
  sim::Cycle t_start = 0;
  sim::Cycle t_end = 0;
};

sim::Task<> program(std::shared_ptr<Ctx> cx, ProcessingElement& pe) {
  const int rank = pe.rank();
  const int P = cx->cores;
  const int W = cx->p.words_per_pair;
  if (rank == 0) cx->t_start = pe.now();
  for (int round = 0; round < cx->p.repeats; ++round) {
    // Ring schedule: step s pairs rank with (rank+s) out and (rank-s)
    // in — each step is a permutation, so no receiver is oversubscribed.
    for (int s = 1; s < P; ++s) {
      const int to = (rank + s) % P;
      const int from = (rank - s + P) % P;
      std::vector<std::uint32_t> words(static_cast<std::size_t>(W));
      for (int i = 0; i < W; ++i) {
        words[static_cast<std::size_t>(i)] = alltoall_word(rank, to, i);
      }
      co_await pe.compute(4 + W);  // marshalling + loop bookkeeping
      co_await empi::send(pe, cx->sys->node_of_rank(to), std::move(words));
      const auto got =
          co_await empi::receive(pe, cx->sys->node_of_rank(from), W);
      for (int i = 0; i < W; ++i) {
        if (got[static_cast<std::size_t>(i)] != alltoall_word(from, rank, i)) {
          cx->verified_ok = false;
        }
      }
    }
    co_await empi::barrier(pe, cx->members);
  }
  if (rank == 0) cx->t_end = pe.now();
}

}  // namespace

AlltoallResult run_alltoall(core::MedeaSystem& sys, const AlltoallParams& p) {
  if (p.words_per_pair < 1) {
    throw std::invalid_argument("alltoall: words_per_pair must be >= 1");
  }
  if (p.repeats < 1) {
    throw std::invalid_argument("alltoall: repeats must be >= 1");
  }
  if (sys.num_cores() < 2) {
    throw std::invalid_argument("alltoall: needs at least 2 cores");
  }
  auto cx = std::make_shared<Ctx>();
  cx->p = p;
  cx->sys = &sys;
  cx->cores = sys.num_cores();
  cx->members = sys.core_nodes();

  for (int r = 0; r < cx->cores; ++r) {
    sys.set_program(r, program(cx, sys.core(r)));
  }
  const sim::Cycle end = sys.run(2'000'000'000ull);

  AlltoallResult res;
  res.cores = cx->cores;
  res.total_cycles = end;
  res.cycles_per_round =
      static_cast<double>(cx->t_end - cx->t_start) / p.repeats;
  res.verified_ok = cx->verified_ok;
  return res;
}

}  // namespace medea::apps
